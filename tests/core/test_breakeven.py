"""Equation 6: the updated five-minute rule and its sensitivities."""

import hypothesis.strategies as st
import pytest
from hypothesis import given, settings

from repro.core import (
    CostCatalog,
    breakeven_interval_seconds,
    breakeven_rate_ops_per_sec,
    breakeven_report,
    classic_gray_interval_seconds,
    crossover_rate,
    iops_price_sweep,
    page_size_sweep,
    record_cache_breakeven_seconds,
)


def test_paper_value_45_seconds():
    """Section 4.2: Ti ~ 45 seconds with the paper's constants."""
    interval = breakeven_interval_seconds(CostCatalog())
    assert interval == pytest.approx(45.2, abs=0.5)


def test_report_terms_sum():
    report = breakeven_report()
    assert report.interval_seconds == pytest.approx(
        report.io_term_seconds + report.cpu_term_seconds
    )
    assert report.rate_ops_per_sec == pytest.approx(
        1.0 / report.interval_seconds
    )


def test_cpu_term_is_majority_on_modern_ssds():
    """The paper's point: the I/O *execution path* now dominates the
    breakeven, not the device cost."""
    report = breakeven_report()
    assert report.cpu_term_fraction > 0.5


def test_gray_classic_smaller():
    cat = CostCatalog()
    assert classic_gray_interval_seconds(cat) \
        < breakeven_interval_seconds(cat)


def test_crossover_rate_agrees_with_equation_6():
    cat = CostCatalog()
    assert crossover_rate(cat) == pytest.approx(
        breakeven_rate_ops_per_sec(cat), rel=1e-9
    )


@settings(max_examples=100, deadline=None)
@given(
    dram=st.floats(1e-10, 1e-7),
    flash=st.floats(1e-11, 1e-8),
    processor=st.floats(50, 5000),
    io_dollars=st.floats(1, 500),
    rops=st.floats(1e5, 1e8),
    iops=st.floats(1e3, 1e7),
    page=st.floats(256, 65536),
    r=st.floats(1.1, 30),
)
def test_two_derivations_agree_property(dram, flash, processor, io_dollars,
                                        rops, iops, page, r):
    """Equation (6) and the direct Eq(4)=Eq(5) solve must always agree."""
    cat = CostCatalog(
        dram_per_byte=dram, flash_per_byte=flash,
        processor_dollars=processor, ssd_io_dollars=io_dollars,
        rops=rops, iops=iops, page_bytes=page, r=r,
    )
    assert crossover_rate(cat) == pytest.approx(
        breakeven_rate_ops_per_sec(cat), rel=1e-9
    )


def test_record_cache_scales_interval_up():
    """Section 6.3: cheaper-to-hold records stay ~10x longer."""
    cat = CostCatalog()
    record_interval = record_cache_breakeven_seconds(cat, 10)
    assert record_interval == pytest.approx(
        10 * breakeven_interval_seconds(cat)
    )


def test_record_cache_validation():
    with pytest.raises(ValueError):
        record_cache_breakeven_seconds(CostCatalog(), 0)


def test_page_size_sweep_inverse():
    cat = CostCatalog()
    intervals = page_size_sweep(cat, [1024, 2048, 4096])
    assert intervals[0] > intervals[1] > intervals[2]
    assert intervals[0] == pytest.approx(2 * intervals[1])


def test_iops_sweep_monotone_decreasing():
    cat = CostCatalog()
    intervals = iops_price_sweep(cat, [1e5, 2e5, 5e5, 1e6])
    assert all(a > b for a, b in zip(intervals, intervals[1:]))


def test_iops_sweep_floors_at_cpu_term():
    """Even free IOPS cannot shrink Ti below the CPU path term."""
    cat = CostCatalog()
    report = breakeven_report(cat)
    interval_at_huge_iops = iops_price_sweep(cat, [1e12])[0]
    assert interval_at_huge_iops == pytest.approx(
        report.cpu_term_seconds, rel=1e-3
    )


def test_cheaper_r_shrinks_breakeven():
    """Figure 7's premise: smaller R, earlier eviction is worthwhile."""
    cat = CostCatalog()
    assert breakeven_interval_seconds(cat.with_r(5.8)) \
        < breakeven_interval_seconds(cat.with_r(9.0))
