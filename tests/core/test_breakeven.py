"""Equation 6: the updated five-minute rule and its sensitivities."""

import dataclasses

import hypothesis.strategies as st
import pytest
from hypothesis import given, settings

from repro.core import (
    CostCatalog,
    breakeven_interval_seconds,
    breakeven_rate_ops_per_sec,
    breakeven_report,
    classic_gray_interval_seconds,
    crossover_rate,
    hierarchy_breakeven_surface,
    iops_price_sweep,
    page_size_sweep,
    record_cache_breakeven_seconds,
    tier_pair_breakeven,
)
from repro.hardware import StorageHierarchy, TierSpec


def test_paper_value_45_seconds():
    """Section 4.2: Ti ~ 45 seconds with the paper's constants."""
    interval = breakeven_interval_seconds(CostCatalog())
    assert interval == pytest.approx(45.2, abs=0.5)


def test_report_terms_sum():
    report = breakeven_report()
    assert report.interval_seconds == pytest.approx(
        report.io_term_seconds + report.cpu_term_seconds
    )
    assert report.rate_ops_per_sec == pytest.approx(
        1.0 / report.interval_seconds
    )


def test_cpu_term_is_majority_on_modern_ssds():
    """The paper's point: the I/O *execution path* now dominates the
    breakeven, not the device cost."""
    report = breakeven_report()
    assert report.cpu_term_fraction > 0.5


def test_gray_classic_smaller():
    cat = CostCatalog()
    assert classic_gray_interval_seconds(cat) \
        < breakeven_interval_seconds(cat)


def test_crossover_rate_agrees_with_equation_6():
    cat = CostCatalog()
    assert crossover_rate(cat) == pytest.approx(
        breakeven_rate_ops_per_sec(cat), rel=1e-9
    )


@settings(max_examples=100, deadline=None)
@given(
    dram=st.floats(1e-10, 1e-7),
    flash=st.floats(1e-11, 1e-8),
    processor=st.floats(50, 5000),
    io_dollars=st.floats(1, 500),
    rops=st.floats(1e5, 1e8),
    iops=st.floats(1e3, 1e7),
    page=st.floats(256, 65536),
    r=st.floats(1.1, 30),
)
def test_two_derivations_agree_property(dram, flash, processor, io_dollars,
                                        rops, iops, page, r):
    """Equation (6) and the direct Eq(4)=Eq(5) solve must always agree."""
    cat = CostCatalog(
        dram_per_byte=dram, flash_per_byte=flash,
        processor_dollars=processor, ssd_io_dollars=io_dollars,
        rops=rops, iops=iops, page_bytes=page, r=r,
    )
    assert crossover_rate(cat) == pytest.approx(
        breakeven_rate_ops_per_sec(cat), rel=1e-9
    )


def test_record_cache_scales_interval_up():
    """Section 6.3: cheaper-to-hold records stay ~10x longer."""
    cat = CostCatalog()
    record_interval = record_cache_breakeven_seconds(cat, 10)
    assert record_interval == pytest.approx(
        10 * breakeven_interval_seconds(cat)
    )


def test_record_cache_validation():
    with pytest.raises(ValueError):
        record_cache_breakeven_seconds(CostCatalog(), 0)


def test_page_size_sweep_inverse():
    cat = CostCatalog()
    intervals = page_size_sweep(cat, [1024, 2048, 4096])
    assert intervals[0] > intervals[1] > intervals[2]
    assert intervals[0] == pytest.approx(2 * intervals[1])


def test_iops_sweep_monotone_decreasing():
    cat = CostCatalog()
    intervals = iops_price_sweep(cat, [1e5, 2e5, 5e5, 1e6])
    assert all(a > b for a, b in zip(intervals, intervals[1:]))


def test_iops_sweep_floors_at_cpu_term():
    """Even free IOPS cannot shrink Ti below the CPU path term."""
    cat = CostCatalog()
    report = breakeven_report(cat)
    interval_at_huge_iops = iops_price_sweep(cat, [1e12])[0]
    assert interval_at_huge_iops == pytest.approx(
        report.cpu_term_seconds, rel=1e-3
    )


def test_cheaper_r_shrinks_breakeven():
    """Figure 7's premise: smaller R, earlier eviction is worthwhile."""
    cat = CostCatalog()
    assert breakeven_interval_seconds(cat.with_r(5.8)) \
        < breakeven_interval_seconds(cat.with_r(9.0))


class TestUnifiedDerivation:
    """The Equation (6) algebra lives in exactly one place.

    ``breakeven_interval_seconds`` and ``breakeven_report`` used to carry
    separately-associated copies of the derivation that could drift in
    the last ulp; both now sum the same two ``_breakeven_terms`` floats.
    """

    @settings(max_examples=60, deadline=None)
    @given(
        dram=st.floats(1e-10, 1e-7),
        processor=st.floats(50, 5000),
        io_dollars=st.floats(1, 500),
        rops=st.floats(1e5, 1e8),
        iops=st.floats(1e3, 1e7),
        page=st.floats(256, 65536),
        r=st.floats(1.0, 30),
    )
    def test_interval_and_report_bit_identical(self, dram, processor,
                                               io_dollars, rops, iops,
                                               page, r):
        cat = CostCatalog(
            dram_per_byte=dram, processor_dollars=processor,
            ssd_io_dollars=io_dollars, rops=rops, iops=iops,
            page_bytes=page, r=r,
        )
        report = breakeven_report(cat)
        # Exact float equality, not approx: one derivation, one result.
        assert breakeven_interval_seconds(cat) == report.interval_seconds
        assert report.interval_seconds == (
            report.io_term_seconds + report.cpu_term_seconds
        )
        assert classic_gray_interval_seconds(cat) \
            == report.io_term_seconds

    def test_paper_constants_bit_identical(self):
        cat = CostCatalog()
        assert breakeven_interval_seconds(cat) \
            == breakeven_report(cat).interval_seconds


class _CatalogStandIn:
    """A duck-typed catalog, the shape ablation sweeps construct by hand.

    Deliberately NOT a :class:`CostCatalog` — that class validates at
    construction, while the regression here is about stand-ins that
    bypass it and reach the breakeven math with degenerate fields.
    """

    def __init__(self, **overrides):
        defaults = dataclasses.asdict(CostCatalog())
        defaults.update(overrides)
        for name, value in defaults.items():
            setattr(self, name, value)


class TestDegenerateCatalogs:
    """Catalog-like stand-ins with nonsense fields fail loudly.

    The entry points are duck-typed (sweeps hand them stand-ins that
    bypass ``CostCatalog``'s own construction checks), so the math
    validates its inputs instead of dividing by zero or returning a
    negative interval.
    """

    @staticmethod
    def degenerate(**overrides):
        return _CatalogStandIn(**overrides)

    @pytest.mark.parametrize("field", [
        "dram_per_byte", "page_bytes", "iops", "rops",
        "processor_dollars",
    ])
    def test_zero_divisor_fields_rejected(self, field):
        cat = self.degenerate(**{field: 0.0})
        with pytest.raises(ValueError, match=field):
            breakeven_interval_seconds(cat)
        with pytest.raises(ValueError, match=field):
            breakeven_report(cat)

    def test_negative_io_dollars_rejected(self):
        cat = self.degenerate(ssd_io_dollars=-1.0)
        with pytest.raises(ValueError, match="ssd_io_dollars"):
            breakeven_interval_seconds(cat)

    def test_r_below_one_rejected(self):
        # r < 1 would make the Equation (6) CPU term negative: an I/O
        # path shorter than a cached MM operation.
        cat = self.degenerate(r=0.5)
        with pytest.raises(ValueError, match="catalog.r"):
            breakeven_interval_seconds(cat)
        with pytest.raises(ValueError, match="catalog.r"):
            classic_gray_interval_seconds(cat)


class TestTierPairBreakeven:
    def test_paper_pair_reduces_exactly_to_equation_6(self):
        """The 2-tier paper hierarchy IS Equation (6), bit-for-bit."""
        hierarchy = StorageHierarchy.paper_2018()
        cat = CostCatalog()
        assert tier_pair_breakeven(hierarchy.top, hierarchy.home, cat) \
            == breakeven_interval_seconds(cat)

    def test_misordered_pair_rejected(self):
        hierarchy = StorageHierarchy.cxl_2026()
        with pytest.raises(ValueError, match="cheaper"):
            tier_pair_breakeven(hierarchy.home, hierarchy.top)

    def test_shorter_lower_cpu_path_rejected(self):
        upper = TierSpec(name="up", dollars_per_byte=2e-9,
                         access_latency_s=0.0, iops=1e6, io_dollars=0.0,
                         cpu_path_r=5.0)
        lower = TierSpec(name="down", dollars_per_byte=1e-9,
                         access_latency_s=0.0, iops=1e6, io_dollars=0.0,
                         cpu_path_r=2.0, durable_home=True)
        with pytest.raises(ValueError, match="CPU path"):
            tier_pair_breakeven(upper, lower)

    def test_surface_is_monotone_down_the_stack(self):
        """Colder boundaries break even at longer intervals — the fact
        that makes threshold demotion optimal."""
        for hierarchy in (StorageHierarchy.cxl_2026(),
                          StorageHierarchy.modern_2026()):
            rows = hierarchy_breakeven_surface(hierarchy)
            assert len(rows) == len(hierarchy) - 1
            intervals = [row.interval_seconds for row in rows]
            assert intervals == sorted(intervals)
            assert all(a < b for a, b in zip(intervals, intervals[1:]))
            for row in rows:
                assert row.rate_ops_per_sec == pytest.approx(
                    1.0 / row.interval_seconds)
                assert 0.0 < row.cpu_term_fraction <= 1.0

    def test_modern_surface_covers_three_boundaries(self):
        rows = hierarchy_breakeven_surface(StorageHierarchy.modern_2026())
        assert [(r.upper, r.lower) for r in rows] == [
            ("dram", "cxl-far-memory"),
            ("cxl-far-memory", "nvme-ssd"),
            ("nvme-ssd", "object-store"),
        ]

    def test_surface_rows_match_pair_function(self):
        hierarchy = StorageHierarchy.modern_2026()
        cat = CostCatalog()
        rows = hierarchy_breakeven_surface(hierarchy, cat)
        for row, (upper, lower) in zip(rows, hierarchy.pairs()):
            assert row.interval_seconds \
                == tier_pair_breakeven(upper, lower, cat)
