"""Tier selection and cost-optimal cache sizing."""

import hypothesis.strategies as st
import pytest
from hypothesis import given, settings

from repro.core import (
    CacheSizingAdvisor,
    CostCatalog,
    CssParameters,
    Tier,
    TierAdvisor,
    breakeven_rate_ops_per_sec,
)


@pytest.fixture
def advisor() -> TierAdvisor:
    return TierAdvisor(CostCatalog(),
                       CssParameters(compression_ratio=0.5, r_css=9.0))


class TestTierAdvisor:
    def test_hot_page_goes_to_dram(self, advisor):
        assert advisor.tier_for_rate(100.0) is Tier.MM

    def test_cold_page_goes_to_compressed_flash(self, advisor):
        assert advisor.tier_for_rate(1e-6) is Tier.CSS

    def test_warm_page_goes_to_flash(self, advisor):
        boundaries = advisor.boundaries()
        mid = (boundaries.css_to_ss_rate * boundaries.ss_to_mm_rate) ** 0.5
        assert advisor.tier_for_rate(mid) is Tier.SS

    def test_interval_form(self, advisor):
        assert advisor.tier_for_interval(0.001) is Tier.MM
        assert advisor.tier_for_interval(1e7) is Tier.CSS
        with pytest.raises(ValueError):
            advisor.tier_for_interval(0)

    def test_boundaries_ordered(self, advisor):
        boundaries = advisor.boundaries()
        assert 0 < boundaries.css_to_ss_rate < boundaries.ss_to_mm_rate

    def test_ss_to_mm_boundary_is_equation_6(self, advisor):
        assert advisor.boundaries().ss_to_mm_rate == pytest.approx(
            breakeven_rate_ops_per_sec(advisor.catalog)
        )

    def test_boundary_tier_lookup_matches_advisor(self, advisor):
        boundaries = advisor.boundaries()
        for rate in (1e-7, 1e-3, 1.0, 100.0):
            assert boundaries.tier_for(rate) is advisor.tier_for_rate(rate)

    def test_without_css_only_two_tiers(self):
        advisor = TierAdvisor(include_css=False)
        assert advisor.tier_for_rate(1e-9) is Tier.SS
        assert advisor.tier_for_rate(1e3) is Tier.MM

    def test_free_decompression_makes_css_dominate_ss(self):
        cat = CostCatalog()
        advisor = TierAdvisor(cat, CssParameters(
            compression_ratio=0.5, r_css=cat.r,
        ))
        assert advisor.boundaries().css_to_ss_rate == float("inf")

    @settings(max_examples=100, deadline=None)
    @given(rate=st.floats(1e-9, 1e4))
    def test_advisor_picks_true_minimum_property(self, rate):
        advisor = TierAdvisor(CostCatalog(),
                              CssParameters(0.5, 9.0))
        tier = advisor.tier_for_rate(rate)
        model = advisor.model
        costs = {
            Tier.MM: model.mm_cost(rate).total,
            Tier.SS: model.ss_cost(rate).total,
            Tier.CSS: model.css_cost(rate).total,
        }
        assert costs[tier] == pytest.approx(min(costs.values()))


class TestCacheSizing:
    def test_threshold_policy(self):
        advisor = CacheSizingAdvisor()
        breakeven = breakeven_rate_ops_per_sec(advisor.catalog)
        rates = [breakeven * 10, breakeven * 2, breakeven / 2,
                 breakeven / 10]
        result = advisor.size_for(rates)
        assert result.cached_pages == 2
        assert result.cache_bytes == pytest.approx(
            2 * advisor.catalog.page_bytes
        )
        assert result.tier_of_page[:2] == (Tier.MM, Tier.MM)

    def test_optimal_beats_extremes(self):
        """The sized cache costs no more than all-DRAM or no-cache."""
        advisor = CacheSizingAdvisor()
        breakeven = breakeven_rate_ops_per_sec(advisor.catalog)
        rates = [breakeven * factor
                 for factor in (100, 10, 2, 0.5, 0.1, 0.01)]
        sized = advisor.size_for(rates).total_cost
        assert sized <= advisor.cost_if_all_cached(rates) + 1e-15
        assert sized <= advisor.cost_if_none_cached(rates) + 1e-15

    def test_all_hot_caches_everything(self):
        advisor = CacheSizingAdvisor()
        breakeven = breakeven_rate_ops_per_sec(advisor.catalog)
        result = advisor.size_for([breakeven * 5] * 10)
        assert result.cached_pages == 10
        assert result.total_cost == pytest.approx(
            advisor.cost_if_all_cached([breakeven * 5] * 10)
        )

    def test_tier_counts(self):
        advisor = CacheSizingAdvisor(include_css=True)
        boundaries = TierAdvisor(advisor.catalog,
                                 advisor.model.css).boundaries()
        ss_mid = (boundaries.css_to_ss_rate
                  * boundaries.ss_to_mm_rate) ** 0.5
        rates = [boundaries.ss_to_mm_rate * 10,
                 ss_mid,
                 boundaries.css_to_ss_rate / 10]
        counts = advisor.size_for(rates).tier_counts
        assert counts[Tier.MM] == 1
        assert counts[Tier.SS] == 1
        assert counts[Tier.CSS] == 1

    @settings(max_examples=50, deadline=None)
    @given(rates=st.lists(st.floats(1e-8, 1e4), min_size=1, max_size=40))
    def test_sized_never_worse_than_extremes_property(self, rates):
        advisor = CacheSizingAdvisor()
        sized = advisor.size_for(rates).total_cost
        assert sized <= advisor.cost_if_all_cached(rates) * (1 + 1e-12)
        assert sized <= advisor.cost_if_none_cached(rates) * (1 + 1e-12)
