"""Tier selection and cost-optimal cache sizing."""

import hypothesis.strategies as st
import pytest
from hypothesis import given, settings

from repro.core import (
    CacheSizingAdvisor,
    CostCatalog,
    CssParameters,
    NTierAdvisor,
    Tier,
    TierAdvisor,
    breakeven_rate_ops_per_sec,
    tier_pair_breakeven,
)
from repro.hardware import StorageHierarchy

#: Colder tiers must never win at higher rates: the ordering the
#: monotonicity properties below assert against.
TIER_RANK = {Tier.MM: 0, Tier.SS: 1, Tier.CSS: 2}


@pytest.fixture
def advisor() -> TierAdvisor:
    return TierAdvisor(CostCatalog(),
                       CssParameters(compression_ratio=0.5, r_css=9.0))


class TestTierAdvisor:
    def test_hot_page_goes_to_dram(self, advisor):
        assert advisor.tier_for_rate(100.0) is Tier.MM

    def test_cold_page_goes_to_compressed_flash(self, advisor):
        assert advisor.tier_for_rate(1e-6) is Tier.CSS

    def test_warm_page_goes_to_flash(self, advisor):
        boundaries = advisor.boundaries()
        mid = (boundaries.css_to_ss_rate * boundaries.ss_to_mm_rate) ** 0.5
        assert advisor.tier_for_rate(mid) is Tier.SS

    def test_interval_form(self, advisor):
        assert advisor.tier_for_interval(0.001) is Tier.MM
        assert advisor.tier_for_interval(1e7) is Tier.CSS
        with pytest.raises(ValueError):
            advisor.tier_for_interval(0)

    def test_boundaries_ordered(self, advisor):
        boundaries = advisor.boundaries()
        assert 0 < boundaries.css_to_ss_rate < boundaries.ss_to_mm_rate

    def test_ss_to_mm_boundary_is_equation_6(self, advisor):
        assert advisor.boundaries().ss_to_mm_rate == pytest.approx(
            breakeven_rate_ops_per_sec(advisor.catalog)
        )

    def test_boundary_tier_lookup_matches_advisor(self, advisor):
        boundaries = advisor.boundaries()
        for rate in (1e-7, 1e-3, 1.0, 100.0):
            assert boundaries.tier_for(rate) is advisor.tier_for_rate(rate)

    def test_without_css_only_two_tiers(self):
        advisor = TierAdvisor(include_css=False)
        assert advisor.tier_for_rate(1e-9) is Tier.SS
        assert advisor.tier_for_rate(1e3) is Tier.MM

    def test_free_decompression_makes_css_dominate_ss(self):
        cat = CostCatalog()
        advisor = TierAdvisor(cat, CssParameters(
            compression_ratio=0.5, r_css=cat.r,
        ))
        assert advisor.boundaries().css_to_ss_rate == float("inf")

    @settings(max_examples=100, deadline=None)
    @given(rate=st.floats(1e-9, 1e4))
    def test_advisor_picks_true_minimum_property(self, rate):
        advisor = TierAdvisor(CostCatalog(),
                              CssParameters(0.5, 9.0))
        tier = advisor.tier_for_rate(rate)
        model = advisor.model
        costs = {
            Tier.MM: model.mm_cost(rate).total,
            Tier.SS: model.ss_cost(rate).total,
            Tier.CSS: model.css_cost(rate).total,
        }
        assert costs[tier] == pytest.approx(min(costs.values()))

    @settings(max_examples=100, deadline=None)
    @given(low=st.floats(1e-9, 1e4), high=st.floats(1e-9, 1e4))
    def test_tier_for_rate_monotone_property(self, low, high):
        """A hotter page never lands on a colder tier."""
        if low > high:
            low, high = high, low
        advisor = TierAdvisor(CostCatalog(), CssParameters(0.5, 9.0))
        assert TIER_RANK[advisor.tier_for_rate(high)] \
            <= TIER_RANK[advisor.tier_for_rate(low)]


class TestCacheSizing:
    def test_threshold_policy(self):
        advisor = CacheSizingAdvisor()
        breakeven = breakeven_rate_ops_per_sec(advisor.catalog)
        rates = [breakeven * 10, breakeven * 2, breakeven / 2,
                 breakeven / 10]
        result = advisor.size_for(rates)
        assert result.cached_pages == 2
        assert result.cache_bytes == pytest.approx(
            2 * advisor.catalog.page_bytes
        )
        assert result.tier_of_page[:2] == (Tier.MM, Tier.MM)

    def test_optimal_beats_extremes(self):
        """The sized cache costs no more than all-DRAM or no-cache."""
        advisor = CacheSizingAdvisor()
        breakeven = breakeven_rate_ops_per_sec(advisor.catalog)
        rates = [breakeven * factor
                 for factor in (100, 10, 2, 0.5, 0.1, 0.01)]
        sized = advisor.size_for(rates).total_cost
        assert sized <= advisor.cost_if_all_cached(rates) + 1e-15
        assert sized <= advisor.cost_if_none_cached(rates) + 1e-15

    def test_all_hot_caches_everything(self):
        advisor = CacheSizingAdvisor()
        breakeven = breakeven_rate_ops_per_sec(advisor.catalog)
        result = advisor.size_for([breakeven * 5] * 10)
        assert result.cached_pages == 10
        assert result.total_cost == pytest.approx(
            advisor.cost_if_all_cached([breakeven * 5] * 10)
        )

    def test_tier_counts(self):
        advisor = CacheSizingAdvisor(include_css=True)
        boundaries = TierAdvisor(advisor.catalog,
                                 advisor.model.css).boundaries()
        ss_mid = (boundaries.css_to_ss_rate
                  * boundaries.ss_to_mm_rate) ** 0.5
        rates = [boundaries.ss_to_mm_rate * 10,
                 ss_mid,
                 boundaries.css_to_ss_rate / 10]
        counts = advisor.size_for(rates).tier_counts
        assert counts[Tier.MM] == 1
        assert counts[Tier.SS] == 1
        assert counts[Tier.CSS] == 1

    @settings(max_examples=50, deadline=None)
    @given(rates=st.lists(st.floats(1e-8, 1e4), min_size=1, max_size=40))
    def test_sized_never_worse_than_extremes_property(self, rates):
        advisor = CacheSizingAdvisor()
        sized = advisor.size_for(rates).total_cost
        assert sized <= advisor.cost_if_all_cached(rates) * (1 + 1e-12)
        assert sized <= advisor.cost_if_none_cached(rates) * (1 + 1e-12)

    def test_size_for_without_css_never_prices_css(self):
        """The bug this pins: selection and costing share one code path.

        The old ``if``/``elif`` in ``size_for`` could still reach the
        CSS costing branch under ``include_css=False``.  Every page's
        tier and price must now come from the same ``cheapest`` call.
        """
        advisor = CacheSizingAdvisor(include_css=False)
        breakeven = breakeven_rate_ops_per_sec(advisor.catalog)
        rates = [breakeven * factor
                 for factor in (100, 3, 1.0, 0.3, 1e-3, 1e-6, 1e-9)]
        result = advisor.size_for(rates)
        assert Tier.CSS not in result.tier_of_page
        expected = sum(
            advisor.model.cheapest(rate, include_css=False).total
            for rate in rates
        )
        assert result.total_cost == expected

    @settings(max_examples=50, deadline=None)
    @given(rates=st.lists(st.floats(1e-9, 1e4), min_size=1, max_size=30))
    def test_size_for_matches_cheapest_property(self, rates):
        """Tier selection agrees with the model's argmin, CSS on or off."""
        for include_css in (False, True):
            advisor = CacheSizingAdvisor(
                css=CssParameters(0.5, 9.0), include_css=include_css)
            result = advisor.size_for(rates)
            for rate, tier in zip(rates, result.tier_of_page):
                winner = advisor.model.cheapest(
                    rate, include_css=include_css)
                assert tier is Tier(winner.kind)


class TestNTierAdvisor:
    @pytest.fixture
    def advisor(self) -> NTierAdvisor:
        return NTierAdvisor(StorageHierarchy.modern_2026())

    def test_default_hierarchy_is_modern(self):
        assert len(NTierAdvisor().hierarchy) == 4

    def test_hot_page_goes_to_dram(self, advisor):
        assert advisor.tier_for_rate(100.0).name == "dram"

    def test_glacial_page_goes_to_object_store(self, advisor):
        assert advisor.tier_for_rate(1e-9).name == "object-store"

    def test_interval_form_and_validation(self, advisor):
        assert advisor.tier_for_interval(0.001).name == "dram"
        with pytest.raises(ValueError):
            advisor.tier_for_interval(0)
        with pytest.raises(ValueError):
            advisor.cost(advisor.hierarchy.top, -1.0)

    def test_costs_at_covers_every_tier(self, advisor):
        costs = advisor.costs_at(1.0)
        assert set(costs) == {t.name for t in advisor.hierarchy}
        assert all(value > 0 for value in costs.values())

    def test_boundaries_agree_with_tier_pair_breakeven(self, advisor):
        for upper, lower, rate in advisor.boundaries():
            assert rate == pytest.approx(1.0 / tier_pair_breakeven(
                upper, lower, advisor.catalog))

    def test_boundary_rates_decrease_down_the_stack(self, advisor):
        rates = [rate for __, __, rate in advisor.boundaries()]
        assert rates == sorted(rates, reverse=True)

    def test_selection_flips_exactly_at_each_boundary(self, advisor):
        """Just above a boundary rate the upper tier wins; just below,
        the lower — the argmin and the pair breakevens are the same
        policy."""
        for upper, lower, rate in advisor.boundaries():
            assert advisor.tier_for_rate(rate * 1.01) is upper
            assert advisor.tier_for_rate(rate * 0.99) is lower

    @settings(max_examples=100, deadline=None)
    @given(low=st.floats(1e-10, 1e5), high=st.floats(1e-10, 1e5))
    def test_tier_for_rate_monotone_property(self, low, high):
        """Hotter pages move strictly up-stack (or stay put)."""
        if low > high:
            low, high = high, low
        advisor = NTierAdvisor(StorageHierarchy.modern_2026())
        order = [tier.name for tier in advisor.hierarchy]
        assert order.index(advisor.tier_for_rate(high).name) \
            <= order.index(advisor.tier_for_rate(low).name)

    @settings(max_examples=100, deadline=None)
    @given(rate=st.floats(1e-10, 1e5))
    def test_tier_for_rate_is_argmin_property(self, rate):
        advisor = NTierAdvisor(StorageHierarchy.modern_2026())
        costs = advisor.costs_at(rate)
        winner = advisor.tier_for_rate(rate)
        assert costs[winner.name] == min(costs.values())

    def test_two_tier_advisor_matches_equation_6(self):
        """Over the paper's own hierarchy the N-tier argmin flips at
        exactly the Equation (6) rate."""
        advisor = NTierAdvisor(StorageHierarchy.paper_2018())
        breakeven = breakeven_rate_ops_per_sec(advisor.catalog)
        assert advisor.tier_for_rate(breakeven * 1.01).name == "dram"
        assert advisor.tier_for_rate(breakeven * 0.99).name == "nvme-ssd"
