"""Adaptive breakeven-interval eviction and the paced workload driver."""

import pytest

from repro.bwtree import BwTree, BwTreeConfig
from repro.core import AdaptiveCacheController, CostCatalog, PacedDriver
from repro.core.breakeven import breakeven_interval_seconds
from repro.hardware import Machine


def make_tree(record_count: int = 600) -> BwTree:
    machine = Machine.paper_default(cores=1)
    tree = BwTree(machine, BwTreeConfig(segment_bytes=1 << 16))
    for index in range(record_count):
        tree.upsert(b"user%06d" % index, b"v" * 100)
    tree.checkpoint()
    return tree


class TestController:
    def test_ti_comes_from_equation_6(self):
        tree = make_tree(50)
        controller = AdaptiveCacheController(tree)
        assert controller.ti_seconds == pytest.approx(
            breakeven_interval_seconds(CostCatalog())
        )
        assert tree.cache.ti_seconds == controller.ti_seconds

    def test_sweep_rate_limited(self):
        tree = make_tree(50)
        controller = AdaptiveCacheController(tree)
        assert controller.maybe_sweep() == 0   # no time has passed
        assert controller.sweeps == 0
        tree.machine.clock.advance(controller.sweep_interval_seconds + 1)
        controller.maybe_sweep()
        assert controller.sweeps == 1

    def test_idle_pages_evicted_after_ti(self):
        tree = make_tree(400)
        controller = AdaptiveCacheController(tree)
        resident_before = tree.cache.resident_pages
        tree.machine.clock.advance(controller.ti_seconds + 1)
        # Touch a handful of pages so they stay.
        for index in range(0, 400, 100):
            tree.get(b"user%06d" % index)
        controller.maybe_sweep()
        assert tree.cache.resident_pages < resident_before
        assert controller.evicted_total > 0
        # Recently touched pages survived.
        hot_entry = tree._descend(b"user%06d" % 0)
        assert hot_entry.state is not None

    def test_resident_fraction(self):
        tree = make_tree(200)
        controller = AdaptiveCacheController(tree)
        assert controller.resident_fraction() == pytest.approx(1.0)
        tree.machine.clock.advance(controller.ti_seconds + 1)
        controller.maybe_sweep()
        assert controller.resident_fraction() < 1.0


class TestPacedDriver:
    def test_think_time_advances_clock(self):
        tree = make_tree(100)
        driver = PacedDriver(tree, offered_ops_per_sec=10.0)
        start = tree.machine.clock.now
        stats = driver.run_phase(
            "reads", (b"user%06d" % (i % 100) for i in range(50))
        )
        assert stats.operations == 50
        # 50 ops at 10/s: at least 5 virtual seconds passed.
        assert tree.machine.clock.now - start >= 5.0

    def test_rejects_nonpositive_rate(self):
        tree = make_tree(10)
        with pytest.raises(ValueError):
            PacedDriver(tree, offered_ops_per_sec=0.0)

    def test_upsert_phase(self):
        tree = make_tree(100)
        driver = PacedDriver(tree, offered_ops_per_sec=100.0)
        keys = [b"user%06d" % i for i in range(20)]
        stats = driver.run_phase("writes", keys,
                                 values=[b"new"] * len(keys))
        assert stats.operations == 20
        assert tree.get(keys[0]) == b"new"

    def test_phase_stats_accumulate(self):
        tree = make_tree(100)
        driver = PacedDriver(tree, offered_ops_per_sec=50.0)
        driver.run_phase("one", [b"user%06d" % 1])
        driver.run_phase("two", [b"user%06d" % 2])
        assert [phase.name for phase in driver.phases] == ["one", "two"]

    def test_ss_fraction_observed_on_cold_reads(self):
        tree = make_tree(400)
        tree.store.flush()
        tree.cache.capacity_bytes = 4096
        tree.cache.ensure_capacity()
        tree.cache.capacity_bytes = None
        driver = PacedDriver(tree, offered_ops_per_sec=100.0)
        stats = driver.run_phase(
            "cold", (b"user%06d" % i for i in range(0, 400, 13))
        )
        assert stats.ss_fraction > 0.5
