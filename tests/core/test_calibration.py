"""Calibration harness against the simulated stack (small configs).

These are integration tests of the measurement protocol itself; the full
paper-scale runs live in benchmarks/.
"""

import pytest

from repro.core import (
    StackConfig,
    build_loaded_stack,
    catalog_from_measurements,
    derive_r,
    measure_direct_r,
    measure_p0,
    measure_point,
    measure_px_mx,
    run_measurement,
)
from repro.core.catalog import CostCatalog
from repro.hardware import IoPathKind

SMALL = StackConfig(record_count=4_000, measure_operations=1_500,
                    warmup_operations=400)


def test_build_loaded_stack_contents():
    machine, tree, generator = build_loaded_stack(SMALL)
    assert len(tree.mapping_table) > 10
    assert machine.operations == 0          # accounting was reset
    key, __ = next(iter(generator.load_items()))
    assert tree.get(key) is not None


def test_cache_fraction_shrinks_residency():
    config = SMALL.replace(cache_fraction=0.3)
    __, tree, __g = build_loaded_stack(config)
    assert tree.cache.capacity_bytes is not None
    assert tree.cache.resident_bytes <= tree.cache.capacity_bytes


def test_cache_fraction_validation():
    with pytest.raises(ValueError):
        build_loaded_stack(SMALL.replace(cache_fraction=1.5))


def test_p0_has_no_ss_ops():
    run = measure_p0(SMALL)
    assert run.f == 0.0
    assert run.throughput > 0
    assert not run.summary.io_bound


def test_starved_cache_produces_ss_ops():
    run = measure_point(SMALL.replace(cache_fraction=0.2,
                                      ssd_iops_override=1e9))
    assert run.f > 0.05
    assert run.throughput < measure_p0(SMALL).throughput


def test_direct_r_in_paper_band():
    r = measure_direct_r(SMALL)
    assert 5.8 * 0.7 < r < 5.8 * 1.3


def test_kernel_path_r_larger():
    r_user = measure_direct_r(SMALL)
    r_kernel = measure_direct_r(SMALL.replace(io_path=IoPathKind.KERNEL))
    assert r_kernel > r_user * 1.2


def test_derive_r_from_points():
    experiment = derive_r(SMALL.replace(ssd_iops_override=5e6),
                          cache_fractions=(0.5, 0.25))
    assert experiment.derivation is not None
    assert 3.0 < experiment.r_mean < 9.0
    assert len(experiment.points) == 2


def test_px_mx_measurement():
    measurement = measure_px_mx(record_count=4_000,
                                measure_operations=1_500)
    assert measurement.px > 1.5
    assert measurement.mx > 1.3
    comparison = measurement.comparison()
    assert comparison.breakeven_constant > 0


def test_catalog_from_measurements():
    run = measure_p0(SMALL)
    catalog = catalog_from_measurements(run, r=6.0, page_bytes=2100.0)
    assert catalog.rops == pytest.approx(run.throughput)
    assert catalog.r == 6.0
    assert catalog.page_bytes == 2100.0
    assert catalog.dram_per_byte == CostCatalog().dram_per_byte


def test_run_measurement_reports_leaf_bytes():
    machine, tree, generator = build_loaded_stack(SMALL)
    run = run_measurement(machine, tree, generator, SMALL)
    assert run.leaf_bytes_total > 0
    assert run.stats.operations == SMALL.measure_operations
