"""Cost catalog: paper constants and derived quantities."""

import pytest

from repro.core import CostCatalog


def test_paper_constants():
    cat = CostCatalog.paper_2018()
    assert cat.dram_per_byte == pytest.approx(5e-9)
    assert cat.flash_per_byte == pytest.approx(0.5e-9)
    assert cat.processor_dollars == 300.0
    assert cat.ssd_io_dollars == 50.0
    assert cat.rops == pytest.approx(4e6)
    assert cat.iops == pytest.approx(2e5)
    assert cat.page_bytes == pytest.approx(2.7e3)
    assert cat.r == pytest.approx(5.8)


def test_mm_execution_cost_is_p_over_rops():
    cat = CostCatalog()
    assert cat.mm_execution_cost_per_op == pytest.approx(300 / 4e6)


def test_ss_execution_cost_formula():
    cat = CostCatalog()
    expected = 50 / 2e5 + 5.8 * 300 / 4e6
    assert cat.ss_execution_cost_per_op == pytest.approx(expected)


def test_storage_costs():
    cat = CostCatalog()
    assert cat.mm_storage_cost() == pytest.approx(5.5e-9 * 2700)
    assert cat.ss_storage_cost() == pytest.approx(0.5e-9 * 2700)
    assert cat.mm_storage_cost(1000) == pytest.approx(5.5e-6)


def test_paper_ratios():
    """Section 4.2: storage ~11x, execution ~9-12x."""
    cat = CostCatalog()
    assert cat.storage_cost_ratio == pytest.approx(11.0)
    assert 9.0 < cat.execution_cost_ratio < 12.5


def test_with_r():
    assert CostCatalog().with_r(9.0).r == 9.0


def test_with_iops_optionally_reprices():
    cat = CostCatalog().with_iops(5e5)
    assert cat.iops == 5e5
    assert cat.ssd_io_dollars == 50.0
    cat2 = CostCatalog().with_iops(5e5, ssd_io_dollars=40.0)
    assert cat2.ssd_io_dollars == 40.0


def test_with_page_bytes():
    assert CostCatalog().with_page_bytes(270).page_bytes == 270


def test_validation():
    with pytest.raises(ValueError):
        CostCatalog(dram_per_byte=0)
    with pytest.raises(ValueError):
        CostCatalog(r=0.5)
    with pytest.raises(ValueError):
        CostCatalog(iops=-1)
