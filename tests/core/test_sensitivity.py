"""Price-trend projection and sensitivity sweeps."""

import hypothesis.strategies as st
import pytest
from hypothesis import given, settings

from repro.core import (
    CostCatalog,
    PriceTrends,
    breakeven_interval_seconds,
    breakeven_trajectory,
    cpu_term_trajectory,
    grid_sweep,
    project_catalog,
    tornado,
)


class TestProjection:
    def test_zero_years_is_identity(self):
        catalog = CostCatalog()
        assert project_catalog(catalog, PriceTrends(), 0.0) == catalog

    def test_compound_rates(self):
        catalog = CostCatalog()
        trends = PriceTrends(dram_per_year=-0.10, flash_per_year=-0.20,
                             iops_per_year=0.25, rops_per_year=0.0)
        future = project_catalog(catalog, trends, 2.0)
        assert future.dram_per_byte == pytest.approx(5e-9 * 0.9 ** 2)
        assert future.flash_per_byte == pytest.approx(0.5e-9 * 0.8 ** 2)
        assert future.iops == pytest.approx(2e5 * 1.25 ** 2)
        assert future.rops == catalog.rops

    def test_negative_years_rejected(self):
        with pytest.raises(ValueError):
            project_catalog(CostCatalog(), PriceTrends(), -1.0)

    def test_trend_validation(self):
        with pytest.raises(ValueError):
            PriceTrends(dram_per_year=-1.5)
        with pytest.raises(ValueError):
            PriceTrends(iops_per_year=-1.0)

    def test_prices_stay_positive_property(self):
        trends = PriceTrends(dram_per_year=-0.5, flash_per_year=-0.9)
        future = project_catalog(CostCatalog(), trends, 10)
        assert future.dram_per_byte > 0
        assert future.flash_per_byte > 0


class TestTrajectories:
    def test_breakeven_trajectory_years_preserved(self):
        points = breakeven_trajectory(CostCatalog(), PriceTrends(),
                                      [0, 1, 2, 5])
        assert [year for year, __ in points] == [0, 1, 2, 5]
        assert points[0][1] == pytest.approx(
            breakeven_interval_seconds(CostCatalog())
        )

    def test_iops_only_trend_shrinks_breakeven(self):
        trends = PriceTrends(dram_per_year=0.0, flash_per_year=0.0,
                             iops_per_year=0.4, rops_per_year=0.0)
        points = breakeven_trajectory(CostCatalog(), trends,
                                      [0, 1, 2, 3])
        values = [ti for __, ti in points]
        assert all(a > b for a, b in zip(values, values[1:]))

    def test_dram_cheapening_lengthens_breakeven(self):
        trends = PriceTrends(dram_per_year=-0.3, flash_per_year=0.0,
                             iops_per_year=0.0, rops_per_year=0.0)
        points = breakeven_trajectory(CostCatalog(), trends, [0, 3])
        assert points[1][1] > points[0][1]

    def test_cpu_term_share_grows_with_iops_trend(self):
        """The paper's §4.2 claim continues: as device I/O cheapens, the
        software path becomes the breakeven's dominant term."""
        trends = PriceTrends(dram_per_year=0.0, flash_per_year=0.0,
                             iops_per_year=0.4, rops_per_year=0.0)
        points = cpu_term_trajectory(CostCatalog(), trends, [0, 2, 5])
        shares = [share for __, share in points]
        assert all(a < b for a, b in zip(shares, shares[1:]))
        assert shares[-1] > 0.8


class TestGridSweep:
    def test_grid_shape_and_values(self):
        result = grid_sweep(
            CostCatalog(),
            "dram_per_byte", [2.5e-9, 5e-9],
            "iops", [1e5, 2e5, 4e5],
        )
        assert len(result["grid"]) == 3          # rows = y values
        assert len(result["grid"][0]) == 2       # cols = x values
        base = breakeven_interval_seconds(CostCatalog())
        assert result["grid"][1][1] == pytest.approx(base)

    def test_grid_monotonicity(self):
        """Ti falls along +IOPS and rises along -DRAM-price."""
        result = grid_sweep(
            CostCatalog(),
            "iops", [1e5, 2e5, 4e5],
            "dram_per_byte", [2.5e-9, 5e-9],
        )
        for row in result["grid"]:
            assert row[0] > row[1] > row[2]
        for col in range(3):
            assert result["grid"][0][col] > result["grid"][1][col]

    def test_unknown_field_rejected(self):
        with pytest.raises(ValueError):
            grid_sweep(CostCatalog(), "nope", [1], "iops", [1e5])

    def test_custom_metric(self):
        result = grid_sweep(
            CostCatalog(),
            "iops", [1e5, 2e5],
            "r", [5.0, 6.0],
            metric=lambda cat: cat.execution_cost_ratio,
        )
        assert result["grid"][0][0] > result["grid"][1][1]


class TestTornado:
    def test_sorted_by_impact(self):
        rows = tornado(CostCatalog())
        impacts = [abs(high - low) for __, low, high in rows]
        assert impacts == sorted(impacts, reverse=True)

    def test_dram_price_is_a_top_driver(self):
        rows = tornado(CostCatalog())
        top_fields = [name for name, __, __h in rows[:3]]
        assert "dram_per_byte" in top_fields

    def test_swing_validation(self):
        with pytest.raises(ValueError):
            tornado(CostCatalog(), swing_fraction=0.0)

    @settings(max_examples=30, deadline=None)
    @given(swing=st.floats(0.05, 0.9))
    def test_all_fields_present_property(self, swing):
        rows = tornado(CostCatalog(), swing_fraction=swing)
        assert len(rows) == 8
        for __, low, high in rows:
            assert low > 0 and high > 0
