"""DeuteronomyEngine facade and transaction context manager."""

import pytest

from repro.bwtree import BwTreeConfig
from repro.deuteronomy import DeuteronomyEngine, TransactionAborted
from repro.hardware import Machine


@pytest.fixture
def engine(machine: Machine) -> DeuteronomyEngine:
    return DeuteronomyEngine(
        machine, BwTreeConfig(segment_bytes=1 << 16)
    )


def test_autocommit_put_get_delete(engine):
    engine.put(b"k", b"v")
    assert engine.get(b"k") == b"v"
    engine.delete(b"k")
    assert engine.get(b"k") is None


def test_context_manager_commits(engine):
    with engine.transaction() as txn:
        engine.tc.write(txn, b"k", b"v")
    assert engine.get(b"k") == b"v"


def test_context_manager_aborts_on_exception(engine):
    with pytest.raises(RuntimeError):
        with engine.transaction() as txn:
            engine.tc.write(txn, b"k", b"v")
            raise RuntimeError("boom")
    assert engine.get(b"k") is None


def test_context_manager_multi_key(engine):
    engine.put(b"from", b"100")
    engine.put(b"to", b"0")
    with engine.transaction() as txn:
        amount = engine.tc.read(txn, b"from")
        engine.tc.write(txn, b"from", b"0")
        engine.tc.write(txn, b"to", amount)
    assert engine.get(b"from") == b"0"
    assert engine.get(b"to") == b"100"


def test_conflict_propagates(engine):
    t1 = engine.tc.begin()
    t2 = engine.tc.begin()
    engine.tc.write(t1, b"k", b"A")
    engine.tc.write(t2, b"k", b"B")
    engine.tc.commit(t1)
    with pytest.raises(TransactionAborted):
        engine.tc.commit(t2)


def test_checkpoint_flushes_log_and_pages(engine, machine):
    for index in range(200):
        engine.put(b"key%04d" % index, b"v" * 50)
    engine.checkpoint()
    assert machine.ssd.counters.get("ssd.writes") > 0
    assert engine.dc.store.stored_bytes > 0


def test_engine_survives_cold_cache(engine):
    for index in range(300):
        engine.put(b"key%04d" % index, b"v%d" % index)
    engine.checkpoint()
    engine.dc.cache.capacity_bytes = 4096
    engine.dc.cache.ensure_capacity()
    engine.dc.cache.capacity_bytes = None
    for index in range(300):
        assert engine.get(b"key%04d" % index) == b"v%d" % index
