"""Transaction component: lifecycle, snapshots, conflicts, caching tiers."""

import pytest

from repro.bwtree import BwTree, BwTreeConfig
from repro.deuteronomy import (
    TcConfig,
    TransactionAborted,
    TransactionComponent,
    TxnStatus,
)
from repro.hardware import Machine


@pytest.fixture
def tc(machine: Machine) -> TransactionComponent:
    tree = BwTree(machine, BwTreeConfig(segment_bytes=1 << 16))
    return TransactionComponent(machine, tree, TcConfig(
        log_buffer_bytes=1 << 12,
        log_retain_budget_bytes=1 << 14,
        read_cache_bytes=1 << 14,
    ))


class TestLifecycle:
    def test_begin_commit(self, tc):
        txn = tc.begin()
        assert txn.status is TxnStatus.ACTIVE
        ts = tc.commit(txn)
        assert ts > 0
        assert txn.status is TxnStatus.COMMITTED

    def test_abort_discards_writes(self, tc):
        txn = tc.begin()
        tc.write(txn, b"k", b"v")
        tc.abort(txn)
        assert tc.dc.get(b"k") is None
        reader = tc.begin()
        assert tc.read(reader, b"k") is None

    def test_double_commit_rejected(self, tc):
        txn = tc.begin()
        tc.commit(txn)
        with pytest.raises(ValueError):
            tc.commit(txn)
        with pytest.raises(ValueError):
            tc.read(txn, b"k")

    def test_commit_timestamps_monotonic(self, tc):
        first = tc.run_update(b"a", b"1")
        second = tc.run_update(b"b", b"2")
        assert second > first


class TestReadsAndWrites:
    def test_committed_write_visible_to_later_txn(self, tc):
        tc.run_update(b"k", b"v")
        txn = tc.begin()
        assert tc.read(txn, b"k") == b"v"

    def test_read_your_own_writes(self, tc):
        txn = tc.begin()
        tc.write(txn, b"k", b"mine")
        assert tc.read(txn, b"k") == b"mine"
        tc.abort(txn)

    def test_snapshot_does_not_see_later_commits(self, tc):
        tc.run_update(b"k", b"v1")
        reader = tc.begin()
        tc.run_update(b"k", b"v2")
        assert tc.read(reader, b"k") == b"v1"

    def test_delete_via_none(self, tc):
        tc.run_update(b"k", b"v")
        tc.run_update(b"k", None)
        txn = tc.begin()
        assert tc.read(txn, b"k") is None
        assert tc.dc.get(b"k") is None

    def test_writes_reach_dc_as_blind_updates(self, tc, machine):
        ios_before = machine.ssd.total_ios
        tc.run_update(b"k", b"v")
        assert tc.dc.get(b"k") == b"v"
        # The DC update itself never read flash.
        assert tc.dc.counters.get("bwtree.ios") == 0
        del ios_before

    def test_run_read_only(self, tc):
        tc.run_update(b"a", b"1")
        tc.run_update(b"b", b"2")
        assert tc.run_read_only([b"a", b"b", b"c"]) == [b"1", b"2", None]


class TestConflicts:
    def test_write_write_conflict_aborts_second(self, tc):
        t1 = tc.begin()
        t2 = tc.begin()
        tc.write(t1, b"k", b"A")
        tc.write(t2, b"k", b"B")
        tc.commit(t1)
        with pytest.raises(TransactionAborted):
            tc.commit(t2)
        assert t2.status is TxnStatus.ABORTED
        assert tc.dc.get(b"k") == b"A"

    def test_disjoint_writes_both_commit(self, tc):
        t1 = tc.begin()
        t2 = tc.begin()
        tc.write(t1, b"a", b"A")
        tc.write(t2, b"b", b"B")
        tc.commit(t1)
        tc.commit(t2)
        assert tc.dc.get(b"a") == b"A"
        assert tc.dc.get(b"b") == b"B"

    def test_read_only_never_conflicts(self, tc):
        tc.run_update(b"k", b"v1")
        reader = tc.begin()
        tc.read(reader, b"k")
        tc.run_update(b"k", b"v2")
        tc.commit(reader)   # fine: no writes


class TestCachingTiers:
    def test_recent_update_served_from_log_cache(self, tc):
        tc.run_update(b"k", b"v")
        txn = tc.begin()
        assert tc.read(txn, b"k") == b"v"
        assert tc.counters.get("tc.log_cache_hits") >= 1
        assert tc.counters.get("tc.dc_reads") == 0

    def test_dc_read_populates_read_cache(self, tc):
        # Put data in the DC without going through the TC.
        tc.dc.upsert(b"cold", b"v")
        txn = tc.begin()
        assert tc.read(txn, b"cold") == b"v"
        assert tc.counters.get("tc.dc_reads") == 1
        txn2 = tc.begin()
        assert tc.read(txn2, b"cold") == b"v"
        assert tc.counters.get("tc.read_cache_hits") == 1
        assert tc.counters.get("tc.dc_reads") == 1   # no second trip

    def test_update_invalidates_read_cache(self, tc):
        tc.dc.upsert(b"k", b"old")
        txn = tc.begin()
        tc.read(txn, b"k")
        tc.commit(txn)
        tc.run_update(b"k", b"new")
        reader = tc.begin()
        assert tc.read(reader, b"k") == b"new"

    def test_hit_rate_reported(self, tc):
        tc.run_update(b"k", b"v")
        txn = tc.begin()
        tc.read(txn, b"k")
        tc.read(txn, b"k")
        assert tc.tc_hit_rate() > 0.0

    def test_footprint_tracks_components(self, tc, machine):
        for index in range(100):
            tc.run_update(b"key%04d" % index, b"v" * 50)
        assert tc.dram_footprint_bytes() == (
            machine.dram.bytes_for("tc_recovery_log")
            + machine.dram.bytes_for("tc_read_cache")
            + machine.dram.bytes_for("tc_version_store")
        )
        assert tc.dram_footprint_bytes() > 0
