"""Group commit and the batched (multi-op) engine API."""

import pytest

from repro.bwtree import BwTreeConfig
from repro.deuteronomy import DeuteronomyEngine, TcConfig
from repro.hardware import Machine


def make_engine(sync: bool = False, cores: int = 1) -> DeuteronomyEngine:
    machine = Machine.paper_default(cores=cores)
    return DeuteronomyEngine(
        machine,
        BwTreeConfig(segment_bytes=1 << 16),
        TcConfig(sync_commit=sync),
    )


class TestMultiOpApi:
    def test_multi_put_then_gets(self):
        engine = make_engine()
        items = [(b"k%02d" % i, b"v%d" % i) for i in range(20)]
        timestamps = engine.multi_put(items)
        assert len(timestamps) == 20
        assert timestamps == sorted(timestamps)
        for key, value in items:
            assert engine.get(key) == value

    def test_multi_put_same_key_last_wins(self):
        engine = make_engine()
        engine.multi_put([(b"k", b"first"), (b"k", b"second"),
                          (b"k", b"third")])
        assert engine.get(b"k") == b"third"

    def test_multi_get_matches_gets(self):
        engine = make_engine()
        engine.multi_put([(b"a", b"1"), (b"b", b"2")])
        assert engine.multi_get([b"a", b"missing", b"b"]) == [
            b"1", None, b"2"]

    def test_multi_delete(self):
        engine = make_engine()
        engine.multi_put([(b"a", b"1"), (b"b", b"2")])
        engine.multi_delete([b"a", b"b"])
        assert engine.multi_get([b"a", b"b"]) == [None, None]

    def test_apply_batch_reads_see_earlier_batch_writes(self):
        engine = make_engine()
        engine.put(b"old", b"0")
        results = engine.apply_batch([
            ("get", b"old", None),
            ("put", b"new", b"1"),
            ("get", b"new", None),
            ("delete", b"old", None),
            ("get", b"old", None),
        ])
        assert results == [b"0", None, b"1", None, None]
        assert engine.get(b"new") == b"1"
        assert engine.get(b"old") is None

    def test_apply_batch_rejects_unknown_kind(self):
        engine = make_engine()
        with pytest.raises(ValueError):
            engine.apply_batch([("scan", b"k", None)])
        assert not engine.tc._active      # the failed txn was aborted

    def test_batched_state_matches_per_op_state(self):
        items = [(b"k%02d" % (i % 10), b"v%d" % i) for i in range(40)]
        per_op, batched = make_engine(), make_engine()
        for key, value in items:
            per_op.put(key, value)
        for start in range(0, len(items), 8):
            batched.multi_put(items[start:start + 8])
        for index in range(10):
            key = b"k%02d" % index
            assert per_op.get(key) == batched.get(key)


class TestGroupCommitSemantics:
    def test_first_committer_wins_within_batch(self):
        engine = make_engine()
        tc = engine.tc
        first, second = tc.begin(), tc.begin()
        tc.write(first, b"k", b"from-first")
        tc.write(second, b"k", b"from-second")
        results = tc.commit_batch([first, second])
        assert results[0] is not None and results[1] is None
        assert engine.get(b"k") == b"from-first"

    def test_conflict_against_committed_version(self):
        engine = make_engine()
        tc = engine.tc
        stale = tc.begin()
        tc.write(stale, b"k", b"stale")
        engine.put(b"k", b"newer")          # commits after stale began
        assert tc.commit_batch([stale]) == [None]
        assert engine.get(b"k") == b"newer"

    def test_disjoint_batch_all_commit(self):
        engine = make_engine()
        tc = engine.tc
        txns = []
        for index in range(5):
            txn = tc.begin()
            tc.write(txn, b"k%d" % index, b"v")
            txns.append(txn)
        results = tc.commit_batch(txns)
        assert all(ts is not None for ts in results)
        assert tc.counters.get("tc.group_commits") == 1

    def test_sync_commit_flushes_once_per_batch(self):
        per_op, batched = make_engine(sync=True), make_engine(sync=True)
        items = [(b"k%02d" % i, b"v") for i in range(32)]
        for key, value in items:
            per_op.put(key, value)
        batched.multi_put(items)
        assert per_op.tc.log.flushes == 32
        assert batched.tc.log.flushes == 1
        assert batched.tc.log.appended_records == 32

    def test_batch_appends_counted(self):
        engine = make_engine()
        engine.multi_put([(b"a", b"1"), (b"b", b"2")])
        engine.multi_put([(b"c", b"3")])
        assert engine.tc.log.batch_appends == 2

    def test_batched_path_spends_fewer_core_us(self):
        items = [(b"k%02d" % i, b"v" * 20) for i in range(64)]
        costs = {}
        for mode in ("per_op", "batched"):
            engine = make_engine()
            engine.machine.reset_accounting()
            if mode == "per_op":
                for key, value in items:
                    engine.put(key, value)
            else:
                engine.multi_put(items)
            costs[mode] = engine.machine.cpu.busy_us
        assert costs["batched"] < costs["per_op"]

    def test_recovered_batch_equals_logged_records(self):
        engine = make_engine(sync=True)
        engine.checkpoint()
        engine.multi_put([(b"k%d" % i, b"v%d" % i) for i in range(8)])
        recovered = DeuteronomyEngine.recover(engine)
        for index in range(8):
            assert recovered.get(b"k%d" % index) == b"v%d" % index


class TestBatchEdgeCases:
    """Edge cases the sharded scatter/gather router leans on."""

    def test_empty_multi_put_is_a_no_op(self):
        engine = make_engine()
        assert engine.multi_put([]) == []
        assert engine.tc.counters.get("tc.commits") == 0

    def test_empty_multi_get_and_delete(self):
        engine = make_engine()
        assert engine.multi_get([]) == []
        assert engine.multi_delete([]) == []

    def test_empty_apply_batch(self):
        engine = make_engine(sync=True)
        flushes = engine.tc.log.flushes
        assert engine.apply_batch([]) == []
        # An empty group commit must not force a log flush.
        assert engine.tc.log.flushes == flushes

    def test_apply_batch_duplicate_key_last_wins(self):
        engine = make_engine()
        results = engine.apply_batch([
            ("put", b"k", b"first"),
            ("put", b"k", b"second"),
            ("get", b"k", None),
            ("put", b"k", b"third"),
        ])
        assert results == [None, None, b"second", None]
        assert engine.get(b"k") == b"third"

    def test_apply_batch_put_then_delete_same_key(self):
        engine = make_engine()
        engine.put(b"k", b"old")
        results = engine.apply_batch([
            ("put", b"k", b"new"),
            ("get", b"k", None),
            ("delete", b"k", None),
            ("get", b"k", None),
            ("put", b"k2", b"kept"),
        ])
        assert results == [None, b"new", None, None, None]
        assert engine.get(b"k") is None
        assert engine.get(b"k2") == b"kept"

    def test_apply_batch_delete_then_put_resurrects(self):
        engine = make_engine()
        engine.put(b"k", b"old")
        engine.apply_batch([
            ("delete", b"k", None),
            ("put", b"k", b"reborn"),
        ])
        assert engine.get(b"k") == b"reborn"

    def test_multi_put_mixed_with_deletes_via_run_update_batch(self):
        engine = make_engine()
        # None values are deletes on the same group-commit path.
        engine.multi_put([(b"a", b"1"), (b"b", b"2")])
        timestamps = engine.tc.run_update_batch(
            [(b"a", None), (b"a", b"3"), (b"b", None)])
        assert all(ts is not None for ts in timestamps)
        assert engine.multi_get([b"a", b"b"]) == [b"3", None]
