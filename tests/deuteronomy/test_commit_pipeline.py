"""Commit pipeline: epoch scheduling, spill ordering, drain, config.

Unit tests drive :class:`CommitPipeline` directly over a small
:class:`RecoveryLog`; integration tests check the TC/engine/fleet wiring
(futures from commits, ``sync_log`` draining, topology validation).
"""

import pytest

from repro.bwtree import BwTreeConfig
from repro.deuteronomy import DeuteronomyEngine, LogRecord, RecoveryLog
from repro.deuteronomy.commit_pipeline import CommitPipeline
from repro.deuteronomy.tc import TcConfig
from repro.hardware import LogDevice, Machine
from repro.sharding.engine import ShardedEngine

TREE = BwTreeConfig(segment_bytes=1 << 16)


def record(index: int, size: int = 50) -> LogRecord:
    return LogRecord(b"k%04d" % index, b"v" * size, timestamp=index,
                     txn_id=index)


@pytest.fixture
def log(machine: Machine) -> RecoveryLog:
    return RecoveryLog(machine, buffer_bytes=1024)


@pytest.fixture
def pipeline(machine: Machine, log: RecoveryLog) -> CommitPipeline:
    device = LogDevice(machine.ssd, machine.clock, ack_latency_us=25.0)
    return CommitPipeline(machine, log, device,
                          commit_interval_us=50.0, epoch_bytes=1 << 16)


class TestConfigValidation:
    def test_non_positive_interval_rejected(self, machine, log):
        device = LogDevice(machine.ssd, machine.clock)
        with pytest.raises(ValueError):
            CommitPipeline(machine, log, device, commit_interval_us=0.0)

    def test_non_positive_epoch_bytes_rejected(self, machine, log):
        device = LogDevice(machine.ssd, machine.clock)
        with pytest.raises(ValueError):
            CommitPipeline(machine, log, device, epoch_bytes=0)

    def test_sync_commit_and_pipeline_are_exclusive(self):
        with pytest.raises(ValueError):
            TcConfig(sync_commit=True, commit_pipeline=True)


class TestEpochScheduling:
    def test_enqueue_opens_epoch_and_returns_pending_future(
            self, log, pipeline):
        log.append(record(0))
        future = pipeline.enqueue_epoch()
        assert pipeline.epoch_open
        assert pipeline.epochs_opened == 1
        assert not future.resolved
        assert future.lsn == log.last_lsn == 1
        assert pipeline.pending_futures == 1

    def test_window_trip_closes_epoch(self, machine, log, pipeline):
        log.append(record(0))
        pipeline.enqueue_epoch()
        machine.clock.advance(60e-6)   # past the 50us window
        log.append(record(1))
        pipeline.enqueue_epoch()
        assert not pipeline.epoch_open
        assert pipeline.epochs_closed == 1
        assert pipeline.inflight_flushes == 1
        assert log.sealed_pending == 1

    def test_byte_threshold_closes_epoch(self, machine, log):
        device = LogDevice(machine.ssd, machine.clock)
        pipeline = CommitPipeline(machine, log, device,
                                  commit_interval_us=1e6, epoch_bytes=128)
        log.append(record(0, size=100))
        pipeline.enqueue_epoch()
        assert pipeline.epochs_closed == 1   # 132B appended >= 128B

    def test_inside_window_epoch_stays_open(self, log, pipeline):
        for index in range(3):
            log.append(record(index))
            pipeline.enqueue_epoch()
        assert pipeline.epoch_open
        assert pipeline.epochs_closed == 0
        assert pipeline.pending_futures == 3

    def test_ack_resolves_futures_in_lsn_order(self, machine, log,
                                               pipeline):
        log.append(record(0))
        first = pipeline.enqueue_epoch()
        machine.clock.advance(60e-6)
        log.append(record(1))
        # The close check runs post-enqueue, so this commit still rides
        # in epoch 1's buffer before the window trips.
        second = pipeline.enqueue_epoch()
        # Well past the ack horizon: the next enqueue drains the ack and
        # resolves epoch 1's futures, in LSN order, but not its own.
        machine.clock.advance(1.0)
        log.append(record(2))
        third = pipeline.enqueue_epoch()
        assert first.resolved and second.resolved
        assert not third.resolved
        assert log.durable_lsn == 2


class TestSpill:
    def test_buffer_full_spills_through_pipeline_not_sync_flush(
            self, machine, log, pipeline):
        flushes_before = log.flushes
        for index in range(20):   # ~86B each into 1 KiB buffers
            log.append(record(index))
            pipeline.enqueue_epoch()
        # Spilled buffers are sealed + submitted, never sync-flushed:
        # nothing is durable until an ack is reached.
        assert log.flushes == flushes_before
        assert pipeline.inflight_flushes > 0
        assert log.sealed_pending == pipeline.inflight_flushes
        assert pipeline.epoch_open   # spill keeps the epoch open

    def test_force_preserves_append_order(self, machine, log, pipeline):
        for index in range(30):
            log.append(record(index))
            pipeline.enqueue_epoch()
        pipeline.force()
        assert [r.txn_id for r in log.durable_records] == list(range(30))

    def test_sync_flush_with_sealed_inflight_asserts(self, log, pipeline):
        for index in range(20):
            log.append(record(index))
            pipeline.enqueue_epoch()
        assert log.sealed_pending > 0
        with pytest.raises(AssertionError, match="sealed buffers"):
            log.flush()


class TestForce:
    def test_force_resolves_everything(self, machine, log, pipeline):
        futures = []
        for index in range(5):
            log.append(record(index))
            futures.append(pipeline.enqueue_epoch())
        pipeline.force()
        assert all(future.resolved for future in futures)
        assert pipeline.pending_futures == 0
        assert pipeline.inflight_flushes == 0
        assert log.durable_lsn == log.last_lsn == 5
        assert not pipeline.epoch_open

    def test_force_waits_on_the_virtual_clock(self, machine, log,
                                              pipeline):
        log.append(record(0))
        pipeline.enqueue_epoch()
        before = machine.clock.now
        pipeline.force()
        # The ack lies in the future at force time: draining advanced
        # the clock and recorded the wait.
        assert machine.clock.now > before
        assert pipeline.commit_wait_us > 0.0

    def test_force_is_idempotent_when_drained(self, log, pipeline):
        log.append(record(0))
        pipeline.enqueue_epoch()
        pipeline.force()
        acks = pipeline.acks
        pipeline.force()
        assert pipeline.acks == acks

    def test_force_flushes_records_appended_outside_epochs(
            self, log, pipeline):
        log.append(record(0))   # e.g. checkpoint metadata, no enqueue
        pipeline.force()
        assert log.durable_lsn == 1


class TestStats:
    def test_stats_keys_and_group_sizes(self, machine, log, pipeline):
        for index in range(4):
            log.append(record(index))
            pipeline.enqueue_epoch()
        pipeline.force()
        stats = pipeline.stats()
        assert stats["epochs_closed"] == 1
        assert stats["futures_resolved"] == 4
        assert stats["group_size_mean"] == 4.0
        assert stats["device_writes"] == 1
        assert stats["device_queue_wait_us"] == 0.0


class TestEngineIntegration:
    def _engine(self, machine: Machine) -> DeuteronomyEngine:
        return DeuteronomyEngine(
            machine, tree_config=TREE,
            tc_config=TcConfig(commit_pipeline=True),
        )

    def test_commit_returns_future_and_sync_log_resolves(self, machine):
        engine = self._engine(machine)
        engine.put(b"k", b"v")
        future = engine.tc.last_commit_future
        assert future is not None
        engine.tc.sync_log()
        assert future.resolved
        assert engine.get(b"k") == b"v"

    def test_stats_carry_pipeline_counters(self, machine):
        engine = self._engine(machine)
        for index in range(10):
            engine.put(b"k%d" % index, b"v")
        engine.tc.sync_log()
        stats = engine.stats()
        assert stats["commit_epochs"] >= 1
        assert stats["log_device_writes"] >= 1
        assert stats["commit_futures_resolved"] == 10
        assert stats["commit_wait_us"] >= 0.0

    def test_sync_engine_reports_zero_pipeline_counters(self, machine):
        engine = DeuteronomyEngine(
            machine, tree_config=TREE,
            tc_config=TcConfig(sync_commit=True),
        )
        engine.put(b"k", b"v")
        stats = engine.stats()
        assert stats["commit_epochs"] == 0
        assert stats["log_device_writes"] == 0
        assert stats["commit_futures_resolved"] == 0

    def test_checkpoint_drains_the_pipeline(self, machine):
        engine = self._engine(machine)
        engine.put(b"k", b"v")
        engine.checkpoint()
        assert engine.tc.last_commit_future.resolved
        assert engine.tc.log.sealed_pending == 0


class TestShardedTopologies:
    def _fleet(self, shards: int = 2, **kwargs) -> ShardedEngine:
        return ShardedEngine(
            shards, tree_config=TREE,
            tc_config=TcConfig(commit_pipeline=True), **kwargs)

    def test_unknown_topology_rejected(self):
        with pytest.raises(ValueError, match="log topology"):
            self._fleet(log_topology="nvram")

    def test_shared_topology_requires_sequential_dispatch(self):
        with pytest.raises(ValueError, match="sequential"):
            self._fleet(log_topology="shared", threaded=True)

    @pytest.mark.parametrize("topology",
                             ["colocated", "per-shard", "shared"])
    def test_batches_commit_and_drain_on_every_topology(self, topology):
        fleet = self._fleet(log_topology=topology)
        fleet.apply_batch([("put", b"k%d" % i, b"v") for i in range(16)])
        fleet.drain_commits()
        for shard in fleet.shards:
            assert shard.tc.pipeline.pending_futures == 0
            assert shard.tc.log.sealed_pending == 0
        assert fleet.stats()["log_topology"] == topology
        assert fleet.get(b"k3") == b"v"

    def test_drain_commits_is_a_noop_for_sync_fleet(self):
        fleet = ShardedEngine(2, tree_config=TREE,
                              tc_config=TcConfig(sync_commit=True))
        fleet.apply_batch([("put", b"k", b"v")])
        fleet.drain_commits()   # must not raise
        assert fleet.stats()["log_topology"] == "colocated"
