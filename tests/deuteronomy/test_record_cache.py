"""Record store: arenas, epoch GC with relocation, dirty pinning, costs."""

import pytest

from repro.deuteronomy import RecordStore
from repro.deuteronomy.record_cache import RECORD_HEADER_BYTES
from repro.hardware import Machine


@pytest.fixture
def store(machine: Machine) -> RecordStore:
    # ~8 records of (32 + 4 + 64) bytes per arena, 4 arenas of budget.
    return RecordStore(machine, budget_bytes=3200, arena_bytes=800)


def _key(index: int) -> bytes:
    return b"k%03d" % index


def test_append_then_hit(store):
    assert store.append_record(b"k", b"v")
    hit, value = store.lookup(b"k")
    assert hit and value == b"v"
    assert store.hits == 1 and store.misses == 0


def test_miss_counted(store):
    hit, value = store.lookup(b"nope")
    assert not hit and value is None
    assert store.misses == 1


def test_tombstone_hit_is_a_hit(store):
    """A cached ``None`` means "known deleted" — a hit returning None."""
    assert store.append_record(b"gone", None)
    hit, value = store.lookup(b"gone")
    assert hit and value is None
    assert store.hits == 1


def test_overwrite_marks_old_image_dead(store):
    store.append_record(b"k", b"v1")
    store.append_record(b"k", b"v2")
    assert len(store) == 1
    assert store.lookup(b"k")[1] == b"v2"
    # Log-structured heap: the superseded image stays resident (physical)
    # but is no longer live.
    assert store.physical_bytes > store.live_bytes


def test_arena_seals_when_full(store):
    for index in range(10):
        store.append_record(_key(index), b"v" * 64)
    assert store.arenas_sealed >= 1
    assert store.epoch == store.arenas_sealed


def test_gc_keeps_heap_under_budget_and_evicts_cold(store):
    for index in range(60):
        store.append_record(_key(index), b"v" * 64)
    assert store.gc_passes >= 1
    assert store.evicted_records > 0
    assert store.physical_bytes <= store.budget_bytes
    # Newest record survives, oldest cold record was evicted.
    assert store.lookup(_key(59))[0]
    assert not store.lookup(_key(0))[0]


def test_referenced_records_get_a_second_chance(store):
    store.append_record(_key(0), b"v" * 64)
    store.lookup(_key(0))    # sets the referenced bit
    for index in range(1, 60):
        store.append_record(_key(index), b"v" * 64)
    # The referenced record was relocated (at least once) instead of
    # being dropped with its arena.
    assert store.gc_relocations >= 1


def test_dirty_records_survive_gc_until_drained(store):
    assert store.append_record(b"hot", b"d" * 64, dirty=True)
    for index in range(60):
        store.append_record(_key(index), b"v" * 64)
    hit, value = store.lookup(b"hot")
    assert hit and value == b"d" * 64
    drained = store.drain_dirty()
    assert (b"hot", b"d" * 64) in drained
    assert store.dirty_bytes == 0


def test_drain_is_last_wins(store):
    store.append_record(b"k", b"v1", dirty=True)
    store.append_record(b"k", b"v2", dirty=True)
    drained = store.drain_dirty()
    assert drained == [(b"k", b"v2")]


def test_oversized_record_rejected(store):
    assert not store.append_record(b"big", b"x" * 2048)
    assert store.rejected_appends == 1
    assert not store.lookup(b"big")[0]


def test_invalidate(store):
    store.append_record(b"k", b"v")
    store.invalidate(b"k")
    assert not store.lookup(b"k")[0]
    store.invalidate(b"never-there")   # silent


def test_dram_matches_physical_bytes(store, machine):
    for index in range(60):
        store.append_record(_key(index), b"v" * 64)
    assert machine.dram.bytes_for("tc_record_cache") == store.physical_bytes


def test_record_bytes_include_header(store):
    store.append_record(b"kk", b"vvv")
    assert store.physical_bytes == RECORD_HEADER_BYTES + 2 + 3


def test_latched_mode_costs_more(machine):
    """The latched heap pays acquire+convoy where latch-free pays
    epoch-protect+CAS — per-op core-us must be strictly higher."""
    def run(mode: str) -> float:
        machine = Machine.paper_default(cores=1)
        store = RecordStore(machine, budget_bytes=3200, arena_bytes=800,
                            concurrency_mode=mode)
        before = machine.cpu.busy_us
        for index in range(40):
            store.append_record(_key(index), b"v" * 64)
            store.lookup(_key(index))
        return machine.cpu.busy_us - before

    assert run("latched") > run("latch_free")


def test_validation(machine):
    with pytest.raises(ValueError):
        RecordStore(machine, budget_bytes=0)
    with pytest.raises(ValueError):
        RecordStore(machine, budget_bytes=100, arena_bytes=200)
    with pytest.raises(ValueError):
        RecordStore(machine, budget_bytes=3200, arena_bytes=800,
                    concurrency_mode="lock_free")


class TestEngineFastPath:
    """Blind-write fast path: commits park deltas in the record heap and
    the DC absorbs them lazily (drain threshold or checkpoint)."""

    def _engine(self, **overrides):
        from repro.deuteronomy import DeuteronomyEngine, TcConfig
        machine = Machine.paper_default(cores=1)
        config = dict(
            record_cache=True,
            record_cache_bytes=64 << 10,
            record_arena_bytes=4 << 10,
            record_dirty_flush_bytes=16 << 10,
        )
        config.update(overrides)
        return DeuteronomyEngine(machine, tc_config=TcConfig(**config))

    def test_commit_defers_dc_materialization(self):
        engine = self._engine()
        engine.put(b"k", b"v" * 32)
        # The delta is committed (read-visible) but no page was built.
        assert engine.get(b"k") == b"v" * 32
        assert engine.dc.get(b"k") is None
        engine.checkpoint()
        assert engine.dc.get(b"k") == b"v" * 32

    def test_dirty_threshold_drains_to_dc(self):
        engine = self._engine(record_dirty_flush_bytes=1 << 10)
        for index in range(40):
            engine.put(b"k%03d" % index, b"v" * 64)
        assert engine.tc.counters.get("tc.record_cache_drains") >= 1
        assert engine.tc.records.dirty_bytes < 1 << 10

    def test_deletes_ride_the_fast_path(self):
        engine = self._engine()
        engine.put(b"k", b"v")
        engine.checkpoint()
        engine.delete(b"k")
        assert engine.get(b"k") is None
        # The tombstone is parked: the DC still has the old value.
        assert engine.dc.get(b"k") == b"v"
        engine.checkpoint()
        assert engine.dc.get(b"k") is None

    def test_stats_expose_record_cache_keys(self):
        engine = self._engine()
        engine.put(b"k", b"v")
        # A DC read populates the heap (here: a cached negative result);
        # the second probe is a record-heap hit.  Written keys are
        # usually served earlier, by the retained-log version store.
        engine.get(b"nope")
        engine.get(b"nope")
        stats = engine.stats()
        assert stats["record_cache_hits"] >= 1
        assert stats["record_heap_bytes"] > 0
        assert "record_cache_gc_relocations" in stats

    def test_stats_keys_present_when_feature_off(self):
        from repro.deuteronomy import DeuteronomyEngine
        machine = Machine.paper_default(cores=1)
        engine = DeuteronomyEngine(machine)
        stats = engine.stats()
        assert stats["record_cache_hits"] == 0
        assert stats["record_cache_gc_relocations"] == 0
        assert stats["record_heap_bytes"] == 0
