"""Recovery log: buffering, large writes, retention budget."""

import pytest

from repro.deuteronomy import LogRecord, RecoveryLog
from repro.hardware import Machine


def record(index: int, size: int = 50) -> LogRecord:
    return LogRecord(b"k%04d" % index, b"v" * size, timestamp=index,
                     txn_id=index)


@pytest.fixture
def log(machine: Machine) -> RecoveryLog:
    return RecoveryLog(machine, buffer_bytes=1024,
                       retain_budget_bytes=4096)


def test_append_returns_buffer_id(log):
    assert log.append(record(1)) == 0
    assert log.appended_records == 1


def test_buffer_flushes_when_full(log, machine):
    writes_before = machine.ssd.counters.get("ssd.writes")
    for index in range(40):   # ~86 bytes each, 1 KiB buffers
        log.append(record(index))
    assert log.flushes >= 2
    assert machine.ssd.counters.get("ssd.writes") > writes_before


def test_flush_is_one_large_write(log, machine):
    for index in range(5):
        log.append(record(index))
    writes_before = machine.ssd.counters.get("ssd.writes")
    log.flush()
    assert machine.ssd.counters.get("ssd.writes") == writes_before + 1


def test_flush_empty_is_noop(log):
    assert log.flush() is None


def test_flushed_buffers_retained_until_budget(log):
    for index in range(200):
        log.append(record(index))
    assert log.retained_bytes <= 4096 + 1024   # budget + open buffer slack
    assert log.dropped_buffers > 0


def test_retention_dram_accounted(machine):
    log = RecoveryLog(machine, buffer_bytes=1024,
                      retain_budget_bytes=2048)
    for index in range(100):
        log.append(record(index))
    assert machine.dram.bytes_for("tc_recovery_log") == log.retained_bytes


def test_is_buffer_retained(log):
    first_buffer = log.append(record(0))
    assert log.is_buffer_retained(first_buffer)
    for index in range(1, 300):
        log.append(record(index))
    assert not log.is_buffer_retained(first_buffer)
    assert log.is_buffer_retained(log.append(record(999)))


def test_unbounded_retention(machine):
    log = RecoveryLog(machine, buffer_bytes=512, retain_budget_bytes=None)
    for index in range(100):
        log.append(record(index))
    assert log.dropped_buffers == 0


def test_oversized_record_rejected(log):
    with pytest.raises(ValueError):
        log.append(record(1, size=5000))


def test_retained_record_index_newest_wins(log):
    log.append(LogRecord(b"k", b"v1", 1, 1))
    log.append(LogRecord(b"k", b"v2", 2, 2))
    assert log.retained_record_index()[b"k"].value == b"v2"


def test_delete_record_allowed(log):
    buffer_id = log.append(LogRecord(b"k", None, 1, 1))
    assert log.is_buffer_retained(buffer_id)
