"""Recovery log: buffering, large writes, retention budget."""

import pytest

from repro.deuteronomy import LogRecord, RecoveryLog
from repro.hardware import Machine


def record(index: int, size: int = 50) -> LogRecord:
    return LogRecord(b"k%04d" % index, b"v" * size, timestamp=index,
                     txn_id=index)


@pytest.fixture
def log(machine: Machine) -> RecoveryLog:
    return RecoveryLog(machine, buffer_bytes=1024,
                       retain_budget_bytes=4096)


def test_append_returns_buffer_id(log):
    assert log.append(record(1)) == 0
    assert log.appended_records == 1


def test_buffer_flushes_when_full(log, machine):
    writes_before = machine.ssd.counters.get("ssd.writes")
    for index in range(40):   # ~86 bytes each, 1 KiB buffers
        log.append(record(index))
    assert log.flushes >= 2
    assert machine.ssd.counters.get("ssd.writes") > writes_before


def test_flush_is_one_large_write(log, machine):
    for index in range(5):
        log.append(record(index))
    writes_before = machine.ssd.counters.get("ssd.writes")
    log.flush()
    assert machine.ssd.counters.get("ssd.writes") == writes_before + 1


def test_flush_empty_is_noop(log):
    assert log.flush() is None


def test_flushed_buffers_retained_until_budget(log):
    for index in range(200):
        log.append(record(index))
    assert log.retained_bytes <= 4096 + 1024   # budget + open buffer slack
    assert log.dropped_buffers > 0


def test_retention_dram_accounted(machine):
    log = RecoveryLog(machine, buffer_bytes=1024,
                      retain_budget_bytes=2048)
    for index in range(100):
        log.append(record(index))
    assert machine.dram.bytes_for("tc_recovery_log") == log.retained_bytes


def test_is_buffer_retained(log):
    first_buffer = log.append(record(0))
    assert log.is_buffer_retained(first_buffer)
    for index in range(1, 300):
        log.append(record(index))
    assert not log.is_buffer_retained(first_buffer)
    assert log.is_buffer_retained(log.append(record(999)))


def test_unbounded_retention(machine):
    log = RecoveryLog(machine, buffer_bytes=512, retain_budget_bytes=None)
    for index in range(100):
        log.append(record(index))
    assert log.dropped_buffers == 0


def test_oversized_record_rejected(log):
    with pytest.raises(ValueError):
        log.append(record(1, size=5000))


def test_retained_record_index_newest_wins(log):
    log.append(LogRecord(b"k", b"v1", 1, 1))
    log.append(LogRecord(b"k", b"v2", 2, 2))
    assert log.retained_record_index()[b"k"].value == b"v2"


def test_delete_record_allowed(log):
    buffer_id = log.append(LogRecord(b"k", None, 1, 1))
    assert log.is_buffer_retained(buffer_id)


class TestRetentionBudget:
    """Direct ``_enforce_budget`` behaviour: eviction order, additivity,
    and the sealed/unflushed protections the async pipeline relies on."""

    def test_eviction_is_strictly_oldest_first(self, log):
        for index in range(200):
            log.append(record(index))
        assert log.dropped_buffers > 0
        retained_ids = [buffer.buffer_id for buffer in log._buffers]
        # Exactly the newest suffix of buffer ids survives: ids are
        # contiguous from the oldest retained one up to the open buffer.
        assert retained_ids == list(range(
            log.dropped_buffers, log.dropped_buffers + len(retained_ids)))
        for buffer_id in range(log.dropped_buffers):
            assert not log.is_buffer_retained(buffer_id)
        for buffer_id in retained_ids:
            assert log.is_buffer_retained(buffer_id)

    def test_retained_bytes_is_the_sum_of_retained_buffers(self, log):
        for index in range(150):
            log.append(record(index))
        assert log.retained_bytes == sum(
            buffer.nbytes for buffer in log._buffers)
        assert log.machine.dram.bytes_for("tc_recovery_log") == \
            log.retained_bytes

    def test_unflushed_buffer_is_never_dropped(self, machine):
        # Budget far smaller than one buffer: the open (unflushed)
        # buffer must survive enforcement regardless.
        log = RecoveryLog(machine, buffer_bytes=1024,
                          retain_budget_bytes=64)
        for index in range(5):
            log.append(record(index))
        log._enforce_budget()
        assert log.retained_buffers >= 1
        assert log.retained_bytes > 64   # over budget, but not droppable

    def test_sealed_unflushed_buffer_survives_budget_pressure(
            self, machine):
        log = RecoveryLog(machine, buffer_bytes=1024,
                          retain_budget_bytes=64)
        for index in range(5):
            log.append(record(index))
        sealed = log.seal()   # still owed to durable_records
        log._enforce_budget()
        assert log.is_buffer_retained(sealed.buffer_id)
        assert log.sealed_pending == 1

    def test_budget_enforced_at_mark_durable_not_seal(self, machine):
        from repro.hardware import LogDevice

        log = RecoveryLog(machine, buffer_bytes=1024,
                          retain_budget_bytes=64)
        device = LogDevice(machine.ssd, machine.clock)
        for index in range(5):
            log.append(record(index))
        sealed = log.seal()
        log.submit_sealed(sealed, device)
        dropped_before = log.dropped_buffers
        log.mark_durable(sealed)
        # The ack made the buffer evictable and the budget is tiny:
        # enforcement runs inside mark_durable and drops it.
        assert log.dropped_buffers == dropped_before + 1
        assert not log.is_buffer_retained(sealed.buffer_id)
        assert log.durable_lsn == 5   # eviction never touches durability

    def test_partial_flush_keeps_retention_exact(self, machine):
        """A buffer made durable via the async path stays retained (and
        servable) until the budget — not the flush — evicts it."""
        from repro.hardware import LogDevice

        log = RecoveryLog(machine, buffer_bytes=1024,
                          retain_budget_bytes=8192)
        device = LogDevice(machine.ssd, machine.clock)
        first_id = log.append(record(0))
        sealed = log.seal()
        log.submit_sealed(sealed, device)
        log.mark_durable(sealed)
        assert log.is_buffer_retained(first_id)   # budget not exceeded
        assert log.retained_bytes == sum(
            buffer.nbytes for buffer in log._buffers)
        assert log.durable_records == sealed.records

    def test_mark_durable_twice_does_not_duplicate(self, machine):
        from repro.hardware import LogDevice

        log = RecoveryLog(machine, buffer_bytes=1024)
        device = LogDevice(machine.ssd, machine.clock)
        for index in range(3):
            log.append(record(index))
        sealed = log.seal()
        log.submit_sealed(sealed, device)
        log.mark_durable(sealed)
        log.mark_durable(sealed)   # resubmission after a transient error
        assert log.durable_lsn == 3
        assert log.flushes == 1
        assert log.sealed_pending == 0
