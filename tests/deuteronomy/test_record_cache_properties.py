"""Property tests for record-cache v2 (the log-structured record heap).

Two invariants, each in both concurrency modes:

* a random op trace with heap GC *forced* at random intervals is
  read-equivalent to a plain dict model (GC/relocation never loses or
  resurrects a record);
* after a crash, the recovered engine matches the durable prefix — the
  blind-write fast path stays WAL-first even with deltas parked in the
  heap.
"""

from __future__ import annotations

import hypothesis.strategies as st
from hypothesis import HealthCheck, given, settings

from repro.bwtree import BwTree, BwTreeConfig
from repro.deuteronomy import DeuteronomyEngine, TcConfig
from repro.faults.matrix import _durable_view
from repro.hardware import Machine

KEYS = st.sampled_from([b"k%d" % i for i in range(8)])
VALUES = st.binary(min_size=1, max_size=24)
OPS = st.lists(
    st.one_of(
        st.tuples(st.just("put"), KEYS, VALUES),
        st.tuples(st.just("get"), KEYS, st.none()),
        st.tuples(st.just("delete"), KEYS, st.none()),
    ),
    max_size=60,
)
MODES = st.sampled_from(["latch_free", "latched"])
GC_INTERVALS = st.integers(min_value=1, max_value=9)


def make_engine(mode: str) -> DeuteronomyEngine:
    machine = Machine.paper_default(cores=1)
    # Tiny arenas/budget so short traces cross seal and GC boundaries.
    dc = BwTree(machine, BwTreeConfig(segment_bytes=1 << 13))
    return DeuteronomyEngine(
        machine,
        data_component=dc,
        tc_config=TcConfig(
            log_buffer_bytes=1 << 10,
            record_cache=True,
            record_cache_bytes=2 << 10,
            record_arena_bytes=1 << 9,
            record_dirty_flush_bytes=1 << 9,
            concurrency_mode=mode,
        ),
    )


@settings(max_examples=50, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
@given(ops=OPS, mode=MODES, gc_interval=GC_INTERVALS)
def test_trace_with_forced_gc_matches_dict_model(ops, mode, gc_interval):
    engine = make_engine(mode)
    model: dict = {}
    for index, (kind, key, value) in enumerate(ops, start=1):
        if kind == "put":
            engine.put(key, value)
            model[key] = value
        elif kind == "delete":
            engine.delete(key)
            model.pop(key, None)
        else:
            assert engine.get(key) == model.get(key)
        if index % gc_interval == 0:
            engine.tc.records.collect_garbage()
    for key in [b"k%d" % i for i in range(8)]:
        assert engine.get(key) == model.get(key)


@settings(max_examples=30, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
@given(ops=OPS, mode=MODES, gc_interval=GC_INTERVALS,
       checkpoint_at=st.integers(min_value=0, max_value=60))
def test_recovery_matches_durable_prefix(ops, mode, gc_interval,
                                         checkpoint_at):
    engine = make_engine(mode)
    engine.checkpoint()   # recovery needs a baseline image on flash
    for index, (kind, key, value) in enumerate(ops, start=1):
        if kind == "put":
            engine.put(key, value)
        elif kind == "delete":
            engine.delete(key)
        else:
            engine.get(key)
        if index % gc_interval == 0:
            engine.tc.records.collect_garbage()
        if index == checkpoint_at:
            engine.checkpoint()
    expected = _durable_view([engine], {})
    recovered = DeuteronomyEngine.recover(engine)
    for key in [b"k%d" % i for i in range(8)]:
        assert recovered.get(key) == expected.get(key)
