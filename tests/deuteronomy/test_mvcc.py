"""Version store: visibility, ordering, truncation."""

import pytest

from repro.deuteronomy import Version, VersionStore
from repro.hardware import Machine


@pytest.fixture
def store(machine: Machine) -> VersionStore:
    return VersionStore(machine)


def v(ts: int, value: bytes = b"v", buffer_id: int = 0) -> Version:
    return Version(ts, value, buffer_id)


def test_add_and_visible(store):
    store.add(b"k", v(5, b"five"))
    version, examined = store.visible(b"k", 10)
    assert version is not None and version.value == b"five"
    assert examined == 1


def test_visibility_respects_snapshot(store):
    store.add(b"k", v(5, b"five"))
    store.add(b"k", v(9, b"nine"))
    assert store.visible(b"k", 9)[0].value == b"nine"
    assert store.visible(b"k", 8)[0].value == b"five"
    assert store.visible(b"k", 4)[0] is None


def test_unknown_key(store):
    version, examined = store.visible(b"k", 100)
    assert version is None and examined == 0


def test_timestamps_must_increase(store):
    store.add(b"k", v(5))
    with pytest.raises(ValueError):
        store.add(b"k", v(5))
    with pytest.raises(ValueError):
        store.add(b"k", v(4))


def test_newest_timestamp(store):
    assert store.newest_timestamp(b"k") is None
    store.add(b"k", v(3))
    store.add(b"k", v(7))
    assert store.newest_timestamp(b"k") == 7


def test_delete_version_visible_as_none_value(store):
    store.add(b"k", Version(5, None, 0))
    version, __ = store.visible(b"k", 10)
    assert version is not None and version.value is None


def test_truncate_keeps_visible_horizon_version(store):
    for ts in (1, 5, 9):
        store.add(b"k", v(ts, b"%d" % ts))
    removed = store.truncate(horizon_timestamp=6)
    # Version 5 is the newest at-or-below the horizon: must survive.
    assert removed == 1   # only ts=1 dropped
    assert store.visible(b"k", 6)[0].value == b"5"
    assert store.visible(b"k", 9)[0].value == b"9"


def test_truncate_noop_when_all_above_horizon(store):
    store.add(b"k", v(10))
    assert store.truncate(5) == 0
    assert store.version_count() == 1


def test_bytes_accounting(store, machine):
    store.add(b"k", v(1, b"x" * 100))
    store.add(b"k", v(2, b"x" * 100))
    assert machine.dram.bytes_for("tc_version_store") \
        == store.resident_bytes
    store.truncate(2)
    assert machine.dram.bytes_for("tc_version_store") \
        == store.resident_bytes


def test_counts(store):
    store.add(b"a", v(1))
    store.add(b"a", v(2))
    store.add(b"b", v(1))
    assert store.key_count() == 2
    assert store.version_count() == 3
