"""Property tests for the transaction component.

Serializability-flavoured checks: committed histories are equivalent to
executing the transactions one at a time in commit order, and snapshot
reads never see half a transaction.
"""

from __future__ import annotations

import hypothesis.strategies as st
from hypothesis import HealthCheck, given, settings

from repro.bwtree import BwTree, BwTreeConfig
from repro.deuteronomy import (
    TcConfig,
    TransactionAborted,
    TransactionComponent,
)
from repro.hardware import Machine

KEYS = st.sampled_from([b"a", b"b", b"c", b"d", b"e"])
VALUES = st.binary(min_size=1, max_size=12)

# A transaction = a list of (key, value) writes plus keys to read first.
TXN = st.tuples(
    st.lists(KEYS, max_size=3, unique=True),             # read set
    st.lists(st.tuples(KEYS, VALUES), max_size=3),       # write set
)


def make_tc() -> TransactionComponent:
    machine = Machine.paper_default(cores=1)
    tree = BwTree(machine, BwTreeConfig(segment_bytes=1 << 14))
    return TransactionComponent(machine, tree, TcConfig(
        log_buffer_bytes=1 << 12,
        log_retain_budget_bytes=1 << 14,
        read_cache_bytes=1 << 13,
    ))


@settings(max_examples=60, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
@given(txns=st.lists(TXN, max_size=15))
def test_serial_execution_matches_model(txns):
    """One-at-a-time transactions behave exactly like a dict."""
    tc = make_tc()
    model: dict = {}
    for read_set, write_set in txns:
        txn = tc.begin()
        for key in read_set:
            assert tc.read(txn, key) == model.get(key)
        for key, value in write_set:
            tc.write(txn, key, value)
        tc.commit(txn)
        for key, value in write_set:
            model[key] = value
    for key in (b"a", b"b", b"c", b"d", b"e"):
        assert tc.dc.get(key) == model.get(key)


@settings(max_examples=60, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
@given(txns=st.lists(TXN, min_size=2, max_size=10),
       interleave=st.lists(st.booleans(), min_size=2, max_size=10))
def test_first_committer_wins_keeps_dc_consistent(txns, interleave):
    """Two overlapping transactions race; the committed history applied
    to a dict in commit order must equal the DC contents."""
    tc = make_tc()
    model: dict = {}
    pending = []
    for index, (read_set, write_set) in enumerate(txns):
        txn = tc.begin()
        for key in read_set:
            tc.read(txn, key)
        for key, value in write_set:
            tc.write(txn, key, value)
        pending.append((txn, write_set))
        overlap = interleave[index % len(interleave)]
        if not overlap or len(pending) >= 2:
            # Commit everything pending (creating ww races when 2 queue).
            for queued_txn, queued_writes in pending:
                try:
                    tc.commit(queued_txn)
                except TransactionAborted:
                    continue
                for key, value in queued_writes:
                    model[key] = value
            pending = []
    for queued_txn, queued_writes in pending:
        try:
            tc.commit(queued_txn)
        except TransactionAborted:
            continue
        for key, value in queued_writes:
            model[key] = value
    for key in (b"a", b"b", b"c", b"d", b"e"):
        assert tc.dc.get(key) == model.get(key)


@settings(max_examples=40, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
@given(initial=st.dictionaries(KEYS, VALUES, min_size=1),
       updates=st.lists(st.tuples(KEYS, VALUES), min_size=1, max_size=8))
def test_snapshot_reads_are_stable(initial, updates):
    """A reader opened before a batch of updates sees none of them."""
    tc = make_tc()
    for key, value in initial.items():
        tc.run_update(key, value)
    reader = tc.begin()
    first_reads = {key: tc.read(reader, key) for key in initial}
    for key, value in updates:
        tc.run_update(key, value)
    # Same snapshot, same answers — regardless of concurrent commits.
    for key in initial:
        assert tc.read(reader, key) == first_reads[key]
    tc.commit(reader)
