"""Read cache: FIFO eviction, budget, hit accounting."""

import pytest

from repro.deuteronomy import ReadCache
from repro.hardware import Machine


@pytest.fixture
def cache(machine: Machine) -> ReadCache:
    return ReadCache(machine, budget_bytes=1024)


def test_insert_then_hit(cache):
    cache.insert(b"k", b"v")
    hit, value = cache.lookup(b"k")
    assert hit and value == b"v"
    assert cache.hits == 1


def test_miss_counted(cache):
    hit, value = cache.lookup(b"nope")
    assert not hit and value is None
    assert cache.misses == 1


def test_hit_rate(cache):
    cache.insert(b"k", b"v")
    cache.lookup(b"k")
    cache.lookup(b"x")
    # A method, not a property: call-signature parity with PageCache.
    assert cache.hit_rate() == pytest.approx(0.5)


def test_hit_rate_empty_cache_is_zero(cache):
    assert cache.hit_rate() == 0.0


def test_fifo_eviction_under_budget(cache):
    for index in range(50):
        cache.insert(b"key%04d" % index, b"v" * 40)
    assert cache.resident_bytes <= 1024
    assert cache.evicted_records > 0
    # Oldest gone, newest present.
    assert not cache.lookup(b"key0000")[0]
    assert cache.lookup(b"key0049")[0]


def test_reinsert_replaces(cache):
    cache.insert(b"k", b"v1")
    cache.insert(b"k", b"v2" * 10)
    assert cache.lookup(b"k")[1] == b"v2" * 10
    assert len(cache) == 1


def test_invalidate(cache):
    cache.insert(b"k", b"v")
    cache.invalidate(b"k")
    assert not cache.lookup(b"k")[0]
    cache.invalidate(b"never-there")   # silent


def test_dram_accounted(cache, machine):
    cache.insert(b"k", b"v" * 100)
    assert machine.dram.bytes_for("tc_read_cache") == cache.resident_bytes
    cache.invalidate(b"k")
    assert machine.dram.bytes_for("tc_read_cache") == 0


def test_budget_validation(machine):
    with pytest.raises(ValueError):
        ReadCache(machine, budget_bytes=0)


def test_over_budget_insert_is_rejected(cache, machine):
    """An entry bigger than the whole budget must not wipe the cache.

    Regression pin: insert used to evict FIFO to empty and then keep the
    over-sized entry resident anyway, permanently over budget.
    """
    cache.insert(b"small", b"v" * 40)
    before_bytes = cache.resident_bytes
    busy_before = machine.cpu.busy_us
    cache.insert(b"huge", b"x" * 2048)   # budget is 1024
    # Only the admission probe was charged (one hash_probe), not a copy.
    charged = machine.cpu.busy_us - busy_before
    assert charged == pytest.approx(machine.cpu.costs.hash_probe)
    # Rejected: nothing copied, nothing evicted, prior entries intact.
    assert cache.rejected_inserts == 1
    assert cache.resident_bytes == before_bytes
    assert cache.evicted_records == 0
    assert cache.lookup(b"small")[0]
    assert not cache.lookup(b"huge")[0]
    # DRAM never saw the over-sized entry.
    assert machine.dram.bytes_for("tc_read_cache") == cache.resident_bytes


class TestDemoteToTiers:
    """FIFO victims park in the far-memory tier instead of dropping."""

    @pytest.fixture
    def tiered(self, machine: Machine) -> ReadCache:
        # ~3 entries of (1-byte key + 64-byte value + 24 overhead) fit.
        return ReadCache(machine, budget_bytes=280, demote_to_tiers=True)

    def test_overflow_demotes_not_drops(self, tiered):
        for index in range(5):
            tiered.insert(bytes([index]), b"v" * 64)
        assert tiered.evicted_records > 0
        assert tiered.demotions == tiered.evicted_records
        assert tiered.tier_resident_bytes > 0

    def test_tier_bytes_are_not_dram(self, tiered, machine):
        for index in range(5):
            tiered.insert(bytes([index]), b"v" * 64)
        assert machine.dram.bytes_for("tc_read_cache") \
            == tiered.resident_bytes
        assert tiered.tier_resident_bytes > 0

    def test_tier_hit_promotes(self, tiered):
        for index in range(5):
            tiered.insert(bytes([index]), b"v" * 64)
        victim = bytes([0])          # FIFO: first in, first demoted
        hit, value = tiered.lookup(victim)
        assert hit and value == b"v" * 64
        assert tiered.promotions == 1
        # Promoted back into DRAM: the next probe hits without a tier trip.
        promotions_before = tiered.promotions
        hit, __ = tiered.lookup(victim)
        assert hit
        assert tiered.promotions == promotions_before

    def test_invalidate_drops_both_copies(self, tiered):
        for index in range(5):
            tiered.insert(bytes([index]), b"v" * 64)
        victim = bytes([0])
        tiered.invalidate(victim)
        hit, value = tiered.lookup(victim)
        assert not hit and value is None
        assert tiered.promotions == 0

    def test_demote_budget_fifo_drops(self, machine):
        cache = ReadCache(machine, budget_bytes=280, demote_to_tiers=True,
                          demote_budget_bytes=100)
        for index in range(8):
            cache.insert(bytes([index]), b"v" * 64)
        assert cache.tier_drops > 0
        assert cache.tier_resident_bytes <= 100

    def test_demote_budget_validation(self, machine):
        with pytest.raises(ValueError):
            ReadCache(machine, budget_bytes=280, demote_to_tiers=True,
                      demote_budget_bytes=0)

    def test_plain_cache_never_parks(self, cache):
        for index in range(50):
            cache.insert(bytes([index]) * 4, b"v" * 100)
        assert cache.evicted_records > 0
        assert cache.demotions == 0
        assert cache.tier_resident_bytes == 0
