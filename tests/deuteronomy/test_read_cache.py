"""Read cache: FIFO eviction, budget, hit accounting."""

import pytest

from repro.deuteronomy import ReadCache
from repro.hardware import Machine


@pytest.fixture
def cache(machine: Machine) -> ReadCache:
    return ReadCache(machine, budget_bytes=1024)


def test_insert_then_hit(cache):
    cache.insert(b"k", b"v")
    hit, value = cache.lookup(b"k")
    assert hit and value == b"v"
    assert cache.hits == 1


def test_miss_counted(cache):
    hit, value = cache.lookup(b"nope")
    assert not hit and value is None
    assert cache.misses == 1


def test_hit_rate(cache):
    cache.insert(b"k", b"v")
    cache.lookup(b"k")
    cache.lookup(b"x")
    # A method, not a property: call-signature parity with PageCache.
    assert cache.hit_rate() == pytest.approx(0.5)


def test_hit_rate_empty_cache_is_zero(cache):
    assert cache.hit_rate() == 0.0


def test_fifo_eviction_under_budget(cache):
    for index in range(50):
        cache.insert(b"key%04d" % index, b"v" * 40)
    assert cache.resident_bytes <= 1024
    assert cache.evicted_records > 0
    # Oldest gone, newest present.
    assert not cache.lookup(b"key0000")[0]
    assert cache.lookup(b"key0049")[0]


def test_reinsert_replaces(cache):
    cache.insert(b"k", b"v1")
    cache.insert(b"k", b"v2" * 10)
    assert cache.lookup(b"k")[1] == b"v2" * 10
    assert len(cache) == 1


def test_invalidate(cache):
    cache.insert(b"k", b"v")
    cache.invalidate(b"k")
    assert not cache.lookup(b"k")[0]
    cache.invalidate(b"never-there")   # silent


def test_dram_accounted(cache, machine):
    cache.insert(b"k", b"v" * 100)
    assert machine.dram.bytes_for("tc_read_cache") == cache.resident_bytes
    cache.invalidate(b"k")
    assert machine.dram.bytes_for("tc_read_cache") == 0


def test_budget_validation(machine):
    with pytest.raises(ValueError):
        ReadCache(machine, budget_bytes=0)
