"""Read cache: FIFO eviction, budget, hit accounting."""

import pytest

from repro.deuteronomy import ReadCache
from repro.hardware import Machine


@pytest.fixture
def cache(machine: Machine) -> ReadCache:
    return ReadCache(machine, budget_bytes=1024)


def test_insert_then_hit(cache):
    cache.insert(b"k", b"v")
    hit, value = cache.lookup(b"k")
    assert hit and value == b"v"
    assert cache.hits == 1


def test_miss_counted(cache):
    hit, value = cache.lookup(b"nope")
    assert not hit and value is None
    assert cache.misses == 1


def test_hit_rate(cache):
    cache.insert(b"k", b"v")
    cache.lookup(b"k")
    cache.lookup(b"x")
    # A method, not a property: call-signature parity with PageCache.
    assert cache.hit_rate() == pytest.approx(0.5)


def test_hit_rate_empty_cache_is_zero(cache):
    assert cache.hit_rate() == 0.0


def test_fifo_eviction_under_budget(cache):
    for index in range(50):
        cache.insert(b"key%04d" % index, b"v" * 40)
    assert cache.resident_bytes <= 1024
    assert cache.evicted_records > 0
    # Oldest gone, newest present.
    assert not cache.lookup(b"key0000")[0]
    assert cache.lookup(b"key0049")[0]


def test_reinsert_replaces(cache):
    cache.insert(b"k", b"v1")
    cache.insert(b"k", b"v2" * 10)
    assert cache.lookup(b"k")[1] == b"v2" * 10
    assert len(cache) == 1


def test_invalidate(cache):
    cache.insert(b"k", b"v")
    cache.invalidate(b"k")
    assert not cache.lookup(b"k")[0]
    cache.invalidate(b"never-there")   # silent


def test_dram_accounted(cache, machine):
    cache.insert(b"k", b"v" * 100)
    assert machine.dram.bytes_for("tc_read_cache") == cache.resident_bytes
    cache.invalidate(b"k")
    assert machine.dram.bytes_for("tc_read_cache") == 0


def test_budget_validation(machine):
    with pytest.raises(ValueError):
        ReadCache(machine, budget_bytes=0)


def test_over_budget_insert_is_rejected(cache, machine):
    """An entry bigger than the whole budget must not wipe the cache.

    Regression pin: insert used to evict FIFO to empty and then keep the
    over-sized entry resident anyway, permanently over budget.
    """
    cache.insert(b"small", b"v" * 40)
    before_bytes = cache.resident_bytes
    busy_before = machine.cpu.busy_us
    cache.insert(b"huge", b"x" * 2048)   # budget is 1024
    # Only the admission probe was charged (one hash_probe), not a copy.
    charged = machine.cpu.busy_us - busy_before
    assert charged == pytest.approx(machine.cpu.costs.hash_probe)
    # Rejected: nothing copied, nothing evicted, prior entries intact.
    assert cache.rejected_inserts == 1
    assert cache.resident_bytes == before_bytes
    assert cache.evicted_records == 0
    assert cache.lookup(b"small")[0]
    assert not cache.lookup(b"huge")[0]
    # DRAM never saw the over-sized entry.
    assert machine.dram.bytes_for("tc_read_cache") == cache.resident_bytes
