"""Shape checks for the fast (analytic or small-run) experiments.

The paper-scale runs live in benchmarks/; here we validate the drivers on
reduced sizes so the test suite stays quick but every experiment's logic is
exercised end to end.
"""

import pytest

from repro.bench import (
    ablation_a1,
    ablation_a2,
    ablation_a4,
    figure2,
    figure8,
    table2,
)
from repro.core import CostCatalog


class TestFigure2:
    def test_shape_and_render(self):
        result = figure2()
        assert result.shape_ok()
        text = result.render()
        assert "breakeven" in text
        assert "45" in text

    def test_breakeven_matches_paper(self):
        result = figure2()
        assert result.breakeven_interval == pytest.approx(45.2, abs=0.5)

    def test_custom_catalog_shifts_crossover(self):
        # Cheaper DRAM makes retention cheaper: pages can idle longer
        # before eviction wins, so the breakeven interval grows.
        cheap_dram = CostCatalog(dram_per_byte=1e-9)
        result = figure2(cheap_dram)
        assert result.shape_ok()
        assert result.breakeven_interval > 45.5


class TestFigure8:
    def test_shape(self):
        result = figure8(record_count=400)
        assert result.shape_ok()

    def test_measured_ratios_sane(self):
        result = figure8(record_count=400)
        assert 0.0 < result.compression_ratio_deflate < 0.8
        assert 0.0 < result.compression_ratio_rle <= 1.0
        assert result.r_css > CostCatalog().r

    def test_render_names_three_regimes(self):
        text = figure8(record_count=400).render()
        assert "CSS" in text and "MM" in text and "SS" in text


class TestTable2:
    def test_shape(self):
        assert table2().shape_ok()

    def test_render_contains_rule(self):
        assert "five-minute" in table2().render()


class TestAblations:
    def test_a1_write_amplification_ordering(self):
        result = ablation_a1(record_count=1_500, updates=2_000)
        assert result.shape_ok()
        assert result.amp_fixed > result.amp_full >= result.amp_delta

    def test_a2_blind_updates_do_no_io(self):
        result = ablation_a2(record_count=1_500, updates=600)
        assert result.shape_ok()
        assert result.blind_ios == 0
        assert result.read_modify_write_ios > 0

    def test_a4_iops_sweep(self):
        result = ablation_a4()
        assert result.shape_ok()
        assert result.intervals[0] > result.intervals[-1]

    def test_a4_custom_values(self):
        result = ablation_a4(iops_values=[1e5, 1e6])
        assert len(result.intervals) == 2
