"""Shape-check logic for the remaining result objects (synthetic data)."""

from repro.bench.ablations import A3Result, A5Result, A6Result, A8Result
from repro.bench.figures import Figure1Result, Figure3Result, Figure8Result
from repro.bench.tables import Table2Result, Table3Result, Table4Result
from repro.core import CostCatalog, paper_comparison
from repro.core.mixture import mixed_throughput, relative_performance
from repro.core.technology import MemoryTier


def make_figure1(r=5.8, distort=1.0):
    fractions = [i / 10 for i in range(11)]
    p0_1, p0_4 = 1e6, 4e6
    points_1 = [
        {"f": f, "throughput": mixed_throughput(p0_1, f, r) * distort}
        for f in (0.2, 0.5, 0.8)
    ]
    points_4 = [
        {"f": f, "throughput": mixed_throughput(p0_4, f, r) * distort}
        for f in (0.2, 0.5, 0.8)
    ]
    return Figure1Result(
        fractions=fractions,
        curve_r_low=[relative_performance(f, r * 0.7) for f in fractions],
        curve_r_mid=[relative_performance(f, r) for f in fractions],
        curve_r_high=[relative_performance(f, r * 1.3) for f in fractions],
        r_mid=r,
        points_1core=points_1,
        points_4core=points_4,
        p0_1core=p0_1,
        p0_4core=p0_4,
    )


class TestFigure1Shape:
    def test_accepts_points_on_the_curve(self):
        result = make_figure1()
        assert result.points_in_band() == result.total_points()
        assert result.shape_ok()

    def test_rejects_points_far_outside_band(self):
        result = make_figure1(distort=0.4)   # 60% below the model
        assert result.points_in_band() < result.total_points()
        assert not result.shape_ok()

    def test_render_mentions_both_core_counts(self):
        text = make_figure1().render()
        assert "1-core" in text and "4-core" in text


class TestFigure3Shape:
    def make(self):
        comparison = paper_comparison()
        size = 6.1e9
        crossover = comparison.breakeven_rate_ops_per_sec(size)
        rates = [crossover / 4, crossover, crossover * 4]
        curves = comparison.curves(rates, size)
        return Figure3Result(
            comparison_paper=comparison,
            comparison_measured=comparison,
            px_measured=2.6, mx_measured=2.1,
            database_bytes=size, rates=rates,
            bwtree_costs=curves["bwtree"],
            masstree_costs=curves["masstree"],
            crossover_paper=crossover,
            crossover_measured=crossover,
        )

    def test_accepts_consistent_curves(self):
        assert self.make().shape_ok()

    def test_rejects_shifted_crossover(self):
        result = self.make()
        result.crossover_measured *= 10
        assert not result.shape_ok()


class TestFigure8Shape:
    def test_rejects_unordered_boundaries(self):
        result = Figure8Result(
            compression_ratio_rle=0.8, compression_ratio_deflate=0.3,
            r_css=9.0, rates=[0.001], mm_costs=[1.0], ss_costs=[0.5],
            css_costs=[0.4], css_to_ss_rate=1.0, ss_to_mm_rate=0.5,
        )
        assert not result.shape_ok()


class TestTableShapes:
    def test_table2_rejects_wrong_interval(self):
        from repro.bench.tables import table2
        good = table2()
        assert good.shape_ok()
        bad = Table2Result(
            catalog=CostCatalog(), interval_seconds=500.0, rate=1 / 500,
            storage_ratio=good.storage_ratio,
            execution_ratio=good.execution_ratio,
            gray_interval=good.gray_interval,
            record_cache_interval_10=good.record_cache_interval_10,
            crossover_check=1 / 500,
        )
        assert not bad.shape_ok()

    def test_table3_rejects_out_of_band_px(self):
        good_kwargs = dict(
            px=2.6, mx=2.1, constant=8.3e3, paper_constant=8.3e3,
            rate_6_1_gb=0.73e6, rate_100_gb=0.73e6 * 100 / 6.1,
            interval_2_7_kb=3.1,
        )
        assert Table3Result(**good_kwargs).shape_ok()
        bad = dict(good_kwargs)
        bad["px"] = 8.0
        assert not Table3Result(**bad).shape_ok()

    def test_table4_requires_band_and_kernel_gap(self):
        rows = [{"f": 0.3, "throughput": 1e6, "r": 5.9}]
        good = Table4Result(p0=4e6, rows=rows, r_mean=5.9, r_min=5.9,
                            r_max=5.9, r_kernel=9.0)
        assert good.shape_ok()
        bad = Table4Result(p0=4e6, rows=rows, r_mean=5.9, r_min=5.9,
                           r_max=5.9, r_kernel=5.0)
        assert not bad.shape_ok()


class TestAblationShapesMore:
    def test_a3_requires_io_savings(self):
        good = A3Result(
            operations=100, read_ios_page_only=1000,
            read_ios_with_tc=800, tc_hit_rate=0.5,
            breakeven_page_seconds=45.0,
            breakeven_record_seconds=450.0, records_per_page=10.0,
        )
        assert good.shape_ok()
        bad = A3Result(
            operations=100, read_ios_page_only=800,
            read_ios_with_tc=1000, tc_hit_rate=0.5,
            breakeven_page_seconds=45.0,
            breakeven_record_seconds=450.0, records_per_page=10.0,
        )
        assert not bad.shape_ok()

    def test_a5_requires_the_tradeoff(self):
        good = A5Result(updates=100, eager_flash_bytes=100,
                        lazy_flash_bytes=200, eager_relocated_bytes=500,
                        lazy_relocated_bytes=100, eager_efficiency=3.0,
                        lazy_efficiency=10.0)
        assert good.shape_ok()
        inverted = A5Result(updates=100, eager_flash_bytes=300,
                            lazy_flash_bytes=200,
                            eager_relocated_bytes=500,
                            lazy_relocated_bytes=100,
                            eager_efficiency=3.0, lazy_efficiency=10.0)
        assert not inverted.shape_ok()

    def test_a6_requires_monotone_tier_progression(self):
        good = A6Result(
            nvram_price_per_byte=2e-9, nvram_slowdown=2.0,
            rates=[1e-4, 1e-2, 1e-1, 10.0],
            tiers=[MemoryTier.CSS, MemoryTier.SS, MemoryTier.NVM,
                   MemoryTier.DRAM],
            dram_vs_nvm_rate=0.126, nvm_vs_ss_rate=0.0076,
            ssd_savings_fraction=0.36,
        )
        assert good.shape_ok()
        regressing = A6Result(
            nvram_price_per_byte=2e-9, nvram_slowdown=2.0,
            rates=[1e-4, 1e-2, 1e-1, 10.0],
            tiers=[MemoryTier.CSS, MemoryTier.NVM, MemoryTier.SS,
                   MemoryTier.DRAM],
            dram_vs_nvm_rate=0.126, nvm_vs_ss_rate=0.0076,
            ssd_savings_fraction=0.36,
        )
        assert not regressing.shape_ok()

    def test_a8_requires_strict_window_win(self):
        good = A8Result(
            compression_ratio=0.5, decompress_ratio=3.0,
            window_low_rate=0.001, window_high_rate=0.01,
            has_window=True, mm_cost_mid=10.0, ss_cost_mid=8.0,
            cmm_cost_mid=6.0, no_window_decompress_ratio=50.0,
        )
        assert good.shape_ok()
        losing = A8Result(
            compression_ratio=0.5, decompress_ratio=3.0,
            window_low_rate=0.001, window_high_rate=0.01,
            has_window=True, mm_cost_mid=10.0, ss_cost_mid=8.0,
            cmm_cost_mid=9.0, no_window_decompress_ratio=50.0,
        )
        assert not losing.shape_ok()
