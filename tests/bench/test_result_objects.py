"""Shape-check logic of the experiment result objects, on synthetic data.

The experiment drivers are expensive; their acceptance logic is not.
These tests feed hand-built results through every ``shape_ok`` so both
the accepting and the rejecting paths are covered.
"""

from repro.bench.ablations import (
    A1Result,
    A2Result,
    A4Result,
    A7Result,
    A9Result,
    A10Result,
)
from repro.bench.figures import Figure2Result, Figure7Result
from repro.core import CostCatalog, breakeven_interval_seconds
from repro.core.mixture import mixed_throughput


class TestFigure2Shape:
    def make(self, swap=False):
        from repro.core import OperationCostModel, logspace_rates
        from repro.core.breakeven import breakeven_rate_ops_per_sec
        cat = CostCatalog()
        rate = breakeven_rate_ops_per_sec(cat)
        rates = logspace_rates(rate / 10, rate * 10, 9)
        model = OperationCostModel(cat)
        mm = [model.mm_cost(r).total for r in rates]
        ss = [model.ss_cost(r).total for r in rates]
        if swap:
            mm, ss = ss, mm
        return Figure2Result(
            rates=rates, mm_costs=mm, ss_costs=ss,
            breakeven_rate=rate,
            breakeven_interval=1 / rate,
        )

    def test_accepts_correct_curves(self):
        assert self.make().shape_ok()

    def test_rejects_swapped_curves(self):
        assert not self.make(swap=True).shape_ok()


class TestFigure7Shape:
    def make(self, r_user=5.8, r_kernel=9.0):
        from repro.core import OperationCostModel, logspace_rates
        from repro.core.breakeven import breakeven_rate_ops_per_sec
        cat_u = CostCatalog().with_r(r_user)
        cat_k = CostCatalog().with_r(r_kernel)
        rates = logspace_rates(1e-4, 1.0, 8)
        return Figure7Result(
            r_kernel=r_kernel, r_user=r_user, rates=rates,
            mm_costs=[OperationCostModel(cat_u).mm_cost(r).total
                      for r in rates],
            ss_costs_kernel=[OperationCostModel(cat_k).ss_cost(r).total
                             for r in rates],
            ss_costs_user=[OperationCostModel(cat_u).ss_cost(r).total
                           for r in rates],
            breakeven_kernel=breakeven_rate_ops_per_sec(cat_k),
            breakeven_user=breakeven_rate_ops_per_sec(cat_u),
        )

    def test_accepts_user_dominating(self):
        assert self.make().shape_ok()

    def test_rejects_inverted_rs(self):
        assert not self.make(r_user=9.0, r_kernel=5.8).shape_ok()


class TestAblationShapes:
    def test_a1_requires_strict_ordering(self):
        good = A1Result(update_count=10, logical_bytes=1000,
                        fixed_block_bytes=4000, full_page_bytes=2000,
                        delta_bytes=500)
        assert good.shape_ok()
        bad = A1Result(update_count=10, logical_bytes=1000,
                       fixed_block_bytes=1000, full_page_bytes=2000,
                       delta_bytes=500)
        assert not bad.shape_ok()
        assert good.amp_fixed == 4.0

    def test_a2_thresholds(self):
        assert A2Result(updates=100, blind_ios=0,
                        read_modify_write_ios=90).shape_ok()
        assert not A2Result(updates=100, blind_ios=10,
                            read_modify_write_ios=90).shape_ok()
        assert not A2Result(updates=100, blind_ios=0,
                            read_modify_write_ios=10).shape_ok()

    def test_a4_requires_monotone_and_40pct_step(self):
        cat = CostCatalog()
        from repro.core import iops_price_sweep
        values = [1e5, 3e5, 5e5]
        good = A4Result(iops_values=values,
                        intervals=iops_price_sweep(cat, values))
        assert good.shape_ok()
        bad = A4Result(iops_values=values, intervals=[1.0, 2.0, 3.0])
        assert not bad.shape_ok()

    def test_a7_checks_paper_numbers(self):
        ssd_ti = breakeven_interval_seconds(CostCatalog())
        good = A7Result(
            system_ops_per_sec=1e6, best_max_txn_per_sec=20.0,
            commodity_max_txn_per_sec=10.0,
            best_max_miss_fraction=2e-4, ops_per_latency=5000.0,
            hdd_breakeven_seconds=ssd_ti * 1000,
            ssd_breakeven_seconds=ssd_ti,
        )
        assert good.shape_ok()
        bad = A7Result(
            system_ops_per_sec=1e6, best_max_txn_per_sec=500.0,
            commodity_max_txn_per_sec=10.0,
            best_max_miss_fraction=2e-4, ops_per_latency=5000.0,
            hdd_breakeven_seconds=ssd_ti * 1000,
            ssd_breakeven_seconds=ssd_ti,
        )
        assert not bad.shape_ok()

    def test_a9_requires_consistent_r(self):
        p0 = 4e6
        points = []
        r_values = []
        for f in (0.2, 0.4, 0.6):
            pf = mixed_throughput(p0, f, 8.0)
            points.append({"cache_fraction": 1 - f, "f": f,
                           "throughput": pf})
            r_values.append(8.0)
        good = A9Result(p0=p0, points=points, r_values=r_values)
        assert good.shape_ok()
        scattered = A9Result(p0=p0, points=points,
                             r_values=[2.0, 8.0, 20.0])
        assert not scattered.shape_ok()

    def test_a10_requires_floating_footprint(self):
        good = A10Result(
            data_bytes=500_000, hot_set_bytes=75_000,
            offered_ops_per_sec=30.0,
            adaptive_phase1_bytes=140_000.0,
            adaptive_phase2_bytes=150_000.0,
            adaptive_f_phase2_tail=0.02,
            all_dram_bytes=500_000.0,
            adaptive_bill=0.003, all_dram_bill=0.005,
        )
        assert good.shape_ok()
        stuck = A10Result(
            data_bytes=500_000, hot_set_bytes=75_000,
            offered_ops_per_sec=30.0,
            adaptive_phase1_bytes=480_000.0,   # never released hot set A
            adaptive_phase2_bytes=480_000.0,
            adaptive_f_phase2_tail=0.02,
            all_dram_bytes=500_000.0,
            adaptive_bill=0.003, all_dram_bill=0.005,
        )
        assert not stuck.shape_ok()


class TestRendering:
    def test_every_result_renders_text(self):
        """render() must produce non-empty monospace text for each."""
        results = [
            TestFigure2Shape().make(),
            TestFigure7Shape().make(),
            A1Result(update_count=10, logical_bytes=1000,
                     fixed_block_bytes=4000, full_page_bytes=2000,
                     delta_bytes=500),
            A2Result(updates=100, blind_ios=0,
                     read_modify_write_ios=90),
        ]
        for result in results:
            text = result.render()
            assert isinstance(text, str)
            assert len(text.splitlines()) >= 3
