"""Text rendering helpers."""

import pytest

from repro.bench import format_series, format_table


def test_table_alignment_and_title():
    text = format_table(
        ["name", "value"],
        [["alpha", 1], ["beta", 22]],
        title="demo",
    )
    lines = text.splitlines()
    assert lines[0] == "demo"
    assert "name" in lines[1] and "value" in lines[1]
    assert set(lines[2]) <= {"-", " "}
    assert "alpha" in lines[3]
    assert "22" in lines[4]


def test_table_rejects_ragged_rows():
    with pytest.raises(ValueError):
        format_table(["a", "b"], [["only-one"]])


def test_number_formatting():
    text = format_table(["x"], [[1234567], [0.000123], [3.14159], [True]])
    assert "1,234,567" in text
    assert "0.000123" in text
    assert "3.142" in text
    assert "yes" in text


def test_series_rendering():
    text = format_series("curve", [1.0, 2.0], [10.0, 20.0],
                         x_label="rate", y_label="cost")
    assert "curve" in text
    assert "rate" in text and "cost" in text
    assert len(text.splitlines()) == 3


def test_series_length_mismatch():
    with pytest.raises(ValueError):
        format_series("bad", [1.0], [1.0, 2.0])
