"""The ``python -m repro`` experiment runner."""

import pytest

from repro.__main__ import EXPERIMENTS, FAST, SUBCOMMANDS, main


def test_list_prints_every_experiment(capsys):
    assert main(["list"]) == 0
    out = capsys.readouterr().out
    for key in EXPERIMENTS:
        assert key in out


def test_no_args_enumerates_every_subcommand(capsys):
    """Bare ``python -m repro`` is the discoverability surface: every
    subcommand must appear with its one-line description."""
    assert main([]) == 0
    out = capsys.readouterr().out
    for name, (__, description) in SUBCOMMANDS.items():
        assert name in out
        assert description in out
    for key in EXPERIMENTS:
        assert key in out
    assert "fast" in out and "all" in out and "list" in out


def test_help_enumerates_every_subcommand(capsys):
    with pytest.raises(SystemExit) as excinfo:
        main(["--help"])
    assert excinfo.value.code == 0
    out = capsys.readouterr().out
    for name, (__, description) in SUBCOMMANDS.items():
        assert name in out
        assert description in out


def test_subcommand_table_modules_expose_main():
    """Every dispatch target must import and offer ``main(argv)``."""
    import importlib

    for name, (module_name, __) in SUBCOMMANDS.items():
        module = importlib.import_module(module_name)
        assert callable(getattr(module, "main")), (name, module_name)


def test_unknown_experiment_errors():
    with pytest.raises(SystemExit):
        main(["nope"])


def test_single_fast_experiment_runs(capsys):
    assert main(["t2"]) == 0
    out = capsys.readouterr().out
    assert "five-minute rule" in out
    assert "shape check: OK" in out


def test_duplicates_deduped(capsys):
    assert main(["a4", "a4"]) == 0
    out = capsys.readouterr().out
    assert out.count("[a4]") == 1


def test_fast_alias_covers_analytic_subset(capsys):
    assert main(["fast"]) == 0
    out = capsys.readouterr().out
    for key in FAST:
        assert f"[{key}]" in out
