"""The ``python -m repro`` experiment runner."""

import pytest

from repro.__main__ import EXPERIMENTS, FAST, main


def test_list_prints_every_experiment(capsys):
    assert main(["list"]) == 0
    out = capsys.readouterr().out
    for key in EXPERIMENTS:
        assert key in out


def test_unknown_experiment_errors():
    with pytest.raises(SystemExit):
        main(["nope"])


def test_single_fast_experiment_runs(capsys):
    assert main(["t2"]) == 0
    out = capsys.readouterr().out
    assert "five-minute rule" in out
    assert "shape check: OK" in out


def test_duplicates_deduped(capsys):
    assert main(["a4", "a4"]) == 0
    out = capsys.readouterr().out
    assert out.count("[a4]") == 1


def test_fast_alias_covers_analytic_subset(capsys):
    assert main(["fast"]) == 0
    out = capsys.readouterr().out
    for key in FAST:
        assert f"[{key}]" in out
