"""The engine throughput benchmark: report shape and the batching win."""

import json

import pytest

from repro.__main__ import main as cli_main
from repro.bench.engine_bench import SCHEMA_VERSION, render, run_bench

PATH_KEYS = {
    "operations", "ops_per_sec", "core_us_per_op", "p50_latency_us",
    "p99_latency_us", "cache_hit_rate", "tc_hit_rate", "log_flushes",
    "log_batch_appends", "ssd_ios", "io_bound", "wall_seconds",
}


class TestRunBench:
    def test_report_shape_and_speedup(self):
        report = run_bench(mixes=["a"], record_count=300, op_count=600,
                           batch_size=32, eviction_comparison=False)
        assert report["schema_version"] == SCHEMA_VERSION
        mix = report["mixes"]["ycsb-a"]
        assert PATH_KEYS <= set(mix["per_op"])
        assert PATH_KEYS <= set(mix["batched"])
        assert mix["per_op"]["operations"] == 600
        assert mix["batched"]["operations"] == 600
        # The point of the batched path: it must beat per-op on the
        # update-heavy mix by a clear margin.
        assert mix["speedup"] >= 1.3
        # Group commit trades per-request latency for throughput.
        assert (mix["batched"]["p50_latency_us"]
                >= mix["per_op"]["p50_latency_us"])
        # One flush decision per batch, not per commit.
        assert mix["batched"]["log_flushes"] < mix["per_op"]["log_flushes"]

    def test_eviction_comparison_parity(self):
        report = run_bench(mixes=[], record_count=800, op_count=1500,
                           eviction_comparison=True)
        eviction = report["eviction"]
        assert abs(eviction["clock_hit_rate"]
                   - eviction["lru_hit_rate"]) <= 0.02

    def test_render_is_textual(self):
        report = run_bench(mixes=["c"], record_count=200, op_count=300,
                           eviction_comparison=False)
        text = render(report)
        assert "ycsb-c" in text
        assert "speedup" in text

    def test_unknown_mix_rejected(self):
        try:
            run_bench(mixes=["z"], record_count=100, op_count=100)
        except ValueError as exc:
            assert "unknown mix" in str(exc)
        else:  # pragma: no cover
            raise AssertionError("expected ValueError")


SHARDED_KEYS = {
    "shards", "operations", "ops_per_sec", "core_us_per_op",
    "fleet_core_seconds", "fleet_elapsed_seconds", "fleet_dram_bytes",
    "tc_hit_rate", "read_cache_hit_rate", "page_cache_hit_rate",
    "log_flushes", "ssd_ios", "shard_balance", "wall_seconds",
}


class TestShardedSweep:
    def test_sharded_section_shape(self):
        report = run_bench(mixes=["a"], record_count=300, op_count=600,
                           batch_size=32, eviction_comparison=False,
                           shard_counts=(1, 2), per_path_comparison=False)
        assert report["mixes"] == {}
        assert report["config"]["shard_counts"] == [1, 2]
        curve = report["sharded"]["ycsb-a"]
        for count in ("1", "2"):
            entry = curve[count]
            assert SHARDED_KEYS <= set(entry)
            assert entry["shards"] == int(count)
            assert entry["operations"] == 600
            assert entry["shard_balance"] >= 1.0
            # Scaling is normalised against the single-shard run.
            assert entry["scaling_vs_1"] == pytest.approx(
                entry["ops_per_sec"] / curve["1"]["ops_per_sec"])
        assert curve["1"]["scaling_vs_1"] == pytest.approx(1.0)

    def test_empty_shard_counts_disable_sweep(self):
        report = run_bench(mixes=["c"], record_count=200, op_count=300,
                           eviction_comparison=False, shard_counts=())
        assert report["sharded"] == {}

    def test_render_includes_sharded_table(self):
        report = run_bench(mixes=["c"], record_count=200, op_count=300,
                           eviction_comparison=False, shard_counts=(1, 2),
                           per_path_comparison=False)
        text = render(report)
        assert "sharded" in text
        assert "scaling" in text


class TestCli:
    def test_bench_engine_subcommand_writes_json(self, tmp_path, capsys):
        out = tmp_path / "bench.json"
        rc = cli_main(["bench-engine", "--smoke", "--out", str(out)])
        assert rc == 0
        report = json.loads(out.read_text())
        assert report["benchmark"] == "engine-throughput"
        assert "ycsb-a" in report["mixes"]
        # Smoke without --shards skips the sweep to stay fast.
        assert report["sharded"] == {}
        captured = capsys.readouterr()
        assert "speedup" in captured.out

    def test_bench_engine_shards_flag_runs_sharded_only(self, tmp_path,
                                                        capsys):
        out = tmp_path / "bench.json"
        rc = cli_main(["bench-engine", "--smoke", "--shards", "2",
                       "--out", str(out)])
        assert rc == 0
        report = json.loads(out.read_text())
        assert report["mixes"] == {}
        assert set(report["sharded"]) == {"ycsb-a"}
        assert report["sharded"]["ycsb-a"]["2"]["shards"] == 2
        captured = capsys.readouterr()
        assert "sharded" in captured.out
