"""The engine throughput benchmark: report shape and the batching win."""

import json

import pytest

from repro.__main__ import main as cli_main
from repro.bench.engine_bench import SCHEMA_VERSION, render, run_bench

PATH_KEYS = {
    "operations", "ops_per_sec", "core_us_per_op", "p50_latency_us",
    "p99_latency_us", "cache_hit_rate", "tc_hit_rate", "log_flushes",
    "log_batch_appends", "ssd_ios", "io_bound", "wall_seconds",
}


class TestRunBench:
    def test_report_shape_and_speedup(self):
        report = run_bench(mixes=["a"], record_count=300, op_count=600,
                           batch_size=32, eviction_comparison=False,
                           record_cache_comparison=False,
                           tiered_comparison=False,
                           whatif_comparison=False)
        assert report["schema_version"] == SCHEMA_VERSION
        mix = report["mixes"]["ycsb-a"]
        assert PATH_KEYS <= set(mix["per_op"])
        assert PATH_KEYS <= set(mix["batched"])
        assert mix["per_op"]["operations"] == 600
        assert mix["batched"]["operations"] == 600
        # The point of the batched path: it must beat per-op on the
        # update-heavy mix by a clear margin.
        assert mix["speedup"] >= 1.3
        # Group commit trades per-request latency for throughput.
        assert (mix["batched"]["p50_latency_us"]
                >= mix["per_op"]["p50_latency_us"])
        # One flush decision per batch, not per commit.
        assert mix["batched"]["log_flushes"] < mix["per_op"]["log_flushes"]

    def test_eviction_comparison_parity(self):
        report = run_bench(mixes=[], record_count=800, op_count=1500,
                           eviction_comparison=True,
                           record_cache_comparison=False,
                           tiered_comparison=False,
                           whatif_comparison=False)
        eviction = report["eviction"]
        assert abs(eviction["clock_hit_rate"]
                   - eviction["lru_hit_rate"]) <= 0.02

    def test_render_is_textual(self):
        report = run_bench(mixes=["c"], record_count=200, op_count=300,
                           eviction_comparison=False,
                           record_cache_comparison=False,
                           tiered_comparison=False,
                           whatif_comparison=False)
        text = render(report)
        assert "ycsb-c" in text
        assert "speedup" in text

    def test_unknown_mix_rejected(self):
        try:
            run_bench(mixes=["z"], record_count=100, op_count=100)
        except ValueError as exc:
            assert "unknown mix" in str(exc)
        else:  # pragma: no cover
            raise AssertionError("expected ValueError")


SHARDED_KEYS = {
    "shards", "operations", "ops_per_sec", "core_us_per_op",
    "fleet_core_seconds", "fleet_elapsed_seconds", "fleet_dram_bytes",
    "tc_hit_rate", "read_cache_hit_rate", "page_cache_hit_rate",
    "log_flushes", "ssd_ios", "shard_balance", "wall_seconds",
}


class TestShardedSweep:
    def test_sharded_section_shape(self):
        report = run_bench(mixes=["a"], record_count=300, op_count=600,
                           batch_size=32, eviction_comparison=False,
                           record_cache_comparison=False,
                           shard_counts=(1, 2), per_path_comparison=False,
                           tiered_comparison=False,
                           whatif_comparison=False)
        assert report["mixes"] == {}
        assert report["config"]["shard_counts"] == [1, 2]
        curve = report["sharded"]["ycsb-a"]
        for count in ("1", "2"):
            entry = curve[count]
            assert SHARDED_KEYS <= set(entry)
            assert entry["shards"] == int(count)
            assert entry["operations"] == 600
            assert entry["shard_balance"] >= 1.0
            # Scaling is normalised against the single-shard run.
            assert entry["scaling_vs_1"] == pytest.approx(
                entry["ops_per_sec"] / curve["1"]["ops_per_sec"])
        assert curve["1"]["scaling_vs_1"] == pytest.approx(1.0)

    def test_empty_shard_counts_disable_sweep(self):
        report = run_bench(mixes=["c"], record_count=200, op_count=300,
                           eviction_comparison=False, shard_counts=(),
                           record_cache_comparison=False,
                           tiered_comparison=False,
                           whatif_comparison=False)
        assert report["sharded"] == {}

    def test_render_includes_sharded_table(self):
        report = run_bench(mixes=["c"], record_count=200, op_count=300,
                           eviction_comparison=False, shard_counts=(1, 2),
                           per_path_comparison=False,
                           record_cache_comparison=False,
                           tiered_comparison=False,
                           whatif_comparison=False)
        text = render(report)
        assert "sharded" in text
        assert "scaling" in text


class TestRecordCacheBlock:
    """Schema-v5 record-granularity vs page-granularity comparison."""

    VARIANT_KEYS = {
        "core_us_per_op", "ops_per_sec", "tc_hit_rate",
        "read_cache_hit_rate", "record_cache_hit_rate",
        "page_cache_hit_rate", "record_cache_gc_relocations",
        "record_heap_bytes", "ssd_ios", "dram_bytes",
    }

    def test_smoke_block_shape_and_floor(self):
        from repro.bench.engine_bench import (
            RECORD_CACHE_FLOOR,
            _run_record_cache_block,
        )
        block = _run_record_cache_block(500, 2000, cores=4,
                                        value_bytes=100, smoke=True)
        assert set(block["variants"]) == {"page", "latch_free"}
        for variant in block["variants"].values():
            assert self.VARIANT_KEYS <= set(variant)
        assert block.get("figure3") is None
        # The acceptance metric: at equal cache DRAM, record-granularity
        # caching beats page-granularity caching by the CI floor.
        assert block["mm_core_us_drop"] >= RECORD_CACHE_FLOOR
        page = block["variants"]["page"]
        latch_free = block["variants"]["latch_free"]
        # The page variant spends the whole budget at page granularity:
        # no TC record caching, more device reads.
        assert page["record_heap_bytes"] == 0
        assert latch_free["record_cache_hit_rate"] > 0.5
        assert latch_free["ssd_ios"] < page["ssd_ios"]

    def test_full_block_figure3_and_latched_costing(self):
        from repro.bench.engine_bench import _run_record_cache_block
        block = _run_record_cache_block(300, 600, cores=4,
                                        value_bytes=100)
        assert set(block["variants"]) == {
            "page", "read_cache_v4", "latch_free", "latched"}
        # Latched mode pays acquire+convoy where latch-free pays
        # epoch-protect+CAS on the identical trace.
        assert block["latch_free_vs_latched_speedup"] > 1.0
        figure3 = block["figure3"]
        for side in ("before", "after"):
            entry = figure3[side]
            assert entry["px"] > 0 and entry["mx"] > 0
            assert entry["core_us_per_op"] > 0
        # The record heap narrows the gap to the MM system on both axes.
        assert figure3["after"]["px"] < figure3["before"]["px"]
        assert figure3["after"]["mx"] < figure3["before"]["mx"]
        assert figure3["database_bytes"] > 0

    def test_figure3_guard_rejects_degenerate_comparison(self):
        from repro.bench.engine_bench import _figure3_side
        # MassTree must be strictly faster AND bigger, else Eq 7 has no
        # crossover to report.
        assert _figure3_side(0.9, 2.0, 1e6, 1 << 20) is None
        assert _figure3_side(2.0, 1.0, 1e6, 1 << 20) is None
        side = _figure3_side(2.6, 2.1, 1e6, 1 << 20)
        assert side["breakeven_constant"] > 0
        assert side["breakeven_rate_ops_per_sec"] > 0

    def test_render_includes_record_cache_section(self):
        report = run_bench(mixes=[], record_count=300, op_count=400,
                           eviction_comparison=False, shard_counts=(),
                           record_cache_comparison=True,
                           tiered_comparison=False,
                           whatif_comparison=False)
        text = render(report)
        assert "record cache v2" in text
        assert "figure-3" in text
        assert "MM-op core-us drop" in text


class TestCli:
    def test_bench_engine_subcommand_writes_json(self, tmp_path, capsys):
        out = tmp_path / "bench.json"
        rc = cli_main(["bench-engine", "--smoke", "--out", str(out)])
        assert rc == 0
        report = json.loads(out.read_text())
        assert report["benchmark"] == "engine-throughput"
        assert "ycsb-a" in report["mixes"]
        # Smoke without --shards skips the sweep to stay fast.
        assert report["sharded"] == {}
        captured = capsys.readouterr()
        assert "speedup" in captured.out

    def test_record_cache_smoke_flag_checks_floor(self, capsys):
        rc = cli_main(["bench-engine", "--record-cache-smoke"])
        assert rc == 0
        captured = capsys.readouterr()
        assert "record-cache smoke" in captured.out
        assert "floor" in captured.out

    def test_bench_engine_shards_flag_runs_sharded_only(self, tmp_path,
                                                        capsys):
        out = tmp_path / "bench.json"
        rc = cli_main(["bench-engine", "--smoke", "--shards", "2",
                       "--out", str(out)])
        assert rc == 0
        report = json.loads(out.read_text())
        assert report["mixes"] == {}
        assert set(report["sharded"]) == {"ycsb-a"}
        assert report["sharded"]["ycsb-a"]["2"]["shards"] == 2
        captured = capsys.readouterr()
        assert "sharded" in captured.out


class TestTieredBlock:
    """Schema-v6 drop-vs-demote comparison over the CXL hierarchy."""

    VARIANT_KEYS = {
        "ops_per_sec", "page_cache_hit_rate", "ssd_ios", "demotions",
        "promotions", "tier_resident_bytes", "dram_bytes",
        "exec_dollars_per_op", "io_dollars_per_op", "dram_dollars_per_op",
        "tier_dollars_per_op", "dollars_per_op",
    }

    def test_block_shape_and_dollar_ceiling(self):
        from repro.bench.engine_bench import (
            TIERED_DOLLARS_CEILING,
            _run_tiered_block,
        )
        block = _run_tiered_block(500, 2000, cores=4, value_bytes=100)
        assert block["workload"] == "ycsb-b"
        assert set(block["variants"]) == {"drop", "demote"}
        for variant in block["variants"].values():
            assert self.VARIANT_KEYS <= set(variant)
        assert block["far_tier"] == "cxl-far-memory"
        assert block["hierarchy"] == ["dram", "cxl-far-memory", "nvme-ssd"]
        drop = block["variants"]["drop"]
        demote = block["variants"]["demote"]
        # The drop variant never touches the victim tier.
        assert drop["demotions"] == 0
        assert drop["tier_resident_bytes"] == 0
        assert drop["tier_dollars_per_op"] == 0.0
        # Demote-not-drop actually runs and pays far-memory rent.
        assert demote["demotions"] > 0
        assert demote["promotions"] > 0
        assert demote["tier_dollars_per_op"] > 0.0
        # Promotions replace device reads on the skewed mix.
        assert demote["ssd_ios"] < drop["ssd_ios"]
        # The acceptance metric: demote wins on $-per-op with rent billed.
        assert block["dollars_ratio"] <= TIERED_DOLLARS_CEILING

    def test_run_bench_attaches_tiered_block(self):
        report = run_bench(mixes=[], record_count=300, op_count=600,
                           eviction_comparison=False, shard_counts=(),
                           record_cache_comparison=False,
                           tiered_comparison=True,
                           whatif_comparison=False)
        assert "tiered" in report
        assert report["tiered"]["workload"] == "ycsb-b"

    def test_render_includes_tiered_table(self):
        report = run_bench(mixes=[], record_count=300, op_count=600,
                           eviction_comparison=False, shard_counts=(),
                           record_cache_comparison=False,
                           tiered_comparison=True,
                           whatif_comparison=False)
        text = render(report)
        assert "tiered eviction" in text
        assert "demote" in text and "drop" in text

    def test_tiered_smoke_flag(self, capsys):
        rc = cli_main(["bench-engine", "--tiered-smoke"])
        assert rc == 0
        captured = capsys.readouterr()
        assert "tiered smoke" in captured.out


class TestWhatifBlock:
    """The schema v7 ``whatif`` block: ranked bottlenecks, validated."""

    def _report(self):
        return run_bench(mixes=[], record_count=300, op_count=600,
                         eviction_comparison=False, shard_counts=(),
                         record_cache_comparison=False,
                         tiered_comparison=False,
                         whatif_comparison=True)

    def test_block_shape_and_agreement(self):
        block = self._report()["whatif"]
        assert block["speedup"] == 2.0
        scenarios = block["scenarios"]
        # The tracked matrix: YCSB A/B/C single-shard, 1-vs-8 shards,
        # sync-vs-async commit.
        assert set(scenarios) == {
            "ycsb-a/1shard/sync", "ycsb-b/1shard/sync",
            "ycsb-c/1shard/sync", "ycsb-a/8shard/sync",
            "ycsb-a/8shard/async-shared-log",
        }
        for scenario in scenarios.values():
            ranking = scenario["ranking"]
            savings = [e["savings_dollars_per_op"] for e in ranking]
            assert savings == sorted(savings, reverse=True)
            assert scenario["top_bottleneck"] == ranking[0]["component"]
            validated = scenario["validated"]
            assert validated["component"] == scenario["top_bottleneck"]
            # check_agreement already asserted the contract; sync
            # scenarios must additionally read exactly zero error.
            if scenario["config"]["commit"] == "sync":
                assert validated["agreement"]["dollars_rel_err"] == 0.0
        shared = scenarios["ycsb-a/8shard/async-shared-log"]
        assert shared["validated"]["contract"] == "queueing"

    def test_render_includes_whatif_table(self):
        text = render(self._report())
        assert "what-if causal bottlenecks" in text
        assert "top bottleneck" in text
