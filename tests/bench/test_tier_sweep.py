"""``python -m repro tiers``: the N-tier breakeven surface CLI."""

from repro.__main__ import main as cli_main
from repro.bench.tier_sweep import PRESETS, render_surface, smoke_check
from repro.core import CostCatalog, breakeven_interval_seconds


class TestRenderSurface:
    def test_render_is_deterministic(self):
        assert render_surface() == render_surface()

    def test_covers_every_preset(self):
        out = render_surface()
        for preset in PRESETS:
            assert f"[{preset}]" in out

    def test_paper_row_prints_equation_6_interval(self):
        eq6 = breakeven_interval_seconds(CostCatalog())
        assert f"{eq6:.3f}" in render_surface()

    def test_modern_sweep_names_top_and_bottom_tiers(self):
        out = render_surface()
        assert "dram" in out
        assert "object-store" in out
        assert "cxl-far-memory" in out

    def test_surface_has_at_least_three_tier_pairs(self):
        # cxl-2026 contributes 2 boundaries and modern-2026 three more:
        # the "deterministic surface over >= 3 tier pairs" acceptance bar.
        out = render_surface()
        assert out.count(" / ") >= 3


class TestSmokeCheck:
    def test_invariants_hold(self):
        assert smoke_check() == []

    def test_detects_catalog_preset_drift(self):
        # The paper-2018 preset bakes in the paper's R; a catalog whose R
        # disagrees breaks the exact Equation (6) reduction and the check
        # must say so rather than silently passing.
        failures = smoke_check(CostCatalog().with_r(2.0))
        assert any("Equation (6)" in failure for failure in failures)


class TestCli:
    def test_tiers_renders(self, capsys):
        assert cli_main(["tiers"]) == 0
        out = capsys.readouterr().out
        assert "N-tier breakeven surface" in out

    def test_tiers_smoke_passes(self, capsys):
        assert cli_main(["tiers", "--smoke"]) == 0
        out = capsys.readouterr().out
        assert "smoke: OK" in out
