"""Property tests: MassTree matches a dict across arbitrary byte keys."""

from __future__ import annotations

import hypothesis.strategies as st
from hypothesis import HealthCheck, given, settings

from repro.hardware import Machine
from repro.masstree import MassTree

# Long keys with shared prefixes force trie-layer promotion.
keys = st.one_of(
    st.binary(min_size=1, max_size=6),
    st.binary(min_size=7, max_size=10),
    st.builds(lambda tail: b"prefix__" + tail,
              st.binary(min_size=0, max_size=12)),
    st.builds(lambda tail: b"prefix__prefix__" + tail,
              st.binary(min_size=0, max_size=6)),
)
values = st.binary(min_size=0, max_size=40)

operations = st.lists(
    st.one_of(
        st.tuples(st.just("upsert"), keys, values),
        st.tuples(st.just("delete"), keys, st.just(b"")),
        st.tuples(st.just("get"), keys, st.just(b"")),
    ),
    max_size=150,
)


@settings(max_examples=80, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
@given(ops=operations)
def test_masstree_matches_dict(ops):
    machine = Machine.paper_default(cores=1)
    tree = MassTree(machine)
    model: dict = {}
    for kind, key, value in ops:
        if kind == "upsert":
            tree.upsert(key, value)
            model[key] = value
        elif kind == "delete":
            assert tree.delete(key) == (key in model)
            model.pop(key, None)
        else:
            assert tree.get(key) == model.get(key)
    assert len(tree) == len(model)
    for key, value in model.items():
        assert tree.get(key) == value
    assert list(tree.scan(b"\x00")) == sorted(model.items())


@settings(max_examples=50, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
@given(pairs=st.dictionaries(keys, values, max_size=80))
def test_masstree_count_and_footprint_consistent(pairs):
    machine = Machine.paper_default(cores=1)
    tree = MassTree(machine)
    for key, value in pairs.items():
        tree.upsert(key, value)
    assert len(tree) == len(pairs)
    assert tree.dram_footprint_bytes() == machine.dram.bytes_for("masstree")
    for key in pairs:
        assert tree.delete(key)
    assert len(tree) == 0


@settings(max_examples=50, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
@given(pairs=st.dictionaries(keys, values, max_size=60), start=keys)
def test_masstree_scan_from_arbitrary_start(pairs, start):
    machine = Machine.paper_default(cores=1)
    tree = MassTree(machine)
    for key, value in pairs.items():
        tree.upsert(key, value)
    got = list(tree.scan(start))
    want = [(k, pairs[k]) for k in sorted(pairs) if k >= start]
    assert got == want
