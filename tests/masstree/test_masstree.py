"""MassTree facade: CRUD, layer promotion, accounting, cost charging."""

import pytest

from repro.hardware import Machine
from repro.masstree import MassTree


@pytest.fixture
def tree(machine: Machine) -> MassTree:
    return MassTree(machine)


class TestBasicOps:
    def test_get_missing(self, tree):
        assert tree.get(b"nope") is None

    def test_upsert_get(self, tree):
        tree.upsert(b"k", b"v")
        assert tree.get(b"k") == b"v"
        assert len(tree) == 1

    def test_overwrite(self, tree):
        tree.upsert(b"k", b"v1")
        tree.upsert(b"k", b"v2")
        assert tree.get(b"k") == b"v2"
        assert len(tree) == 1

    def test_delete(self, tree):
        tree.upsert(b"k", b"v")
        assert tree.delete(b"k")
        assert tree.get(b"k") is None
        assert not tree.delete(b"k")
        assert len(tree) == 0

    def test_contains(self, tree):
        tree.upsert(b"k", b"v")
        assert tree.contains(b"k")
        assert not tree.contains(b"x")

    def test_validation(self, tree):
        with pytest.raises(TypeError):
            tree.upsert("k", b"v")
        with pytest.raises(ValueError):
            tree.get(b"")
        with pytest.raises(TypeError):
            tree.upsert(b"k", 7)


class TestLongKeysAndLayers:
    def test_key_exactly_eight_bytes(self, tree):
        tree.upsert(b"12345678", b"v")
        assert tree.get(b"12345678") == b"v"

    def test_long_key_stored_as_suffix(self, tree):
        tree.upsert(b"12345678abcdef", b"v")
        assert tree.get(b"12345678abcdef") == b"v"
        assert tree.layer_count == 1   # no promotion needed yet

    def test_collision_promotes_layer(self, tree):
        tree.upsert(b"12345678aaaa", b"va")
        tree.upsert(b"12345678bbbb", b"vb")
        assert tree.layer_count == 2
        assert tree.get(b"12345678aaaa") == b"va"
        assert tree.get(b"12345678bbbb") == b"vb"
        assert tree.counters.get("masstree.layer_promotions") == 1

    def test_eight_byte_prefix_and_longer_coexist(self, tree):
        tree.upsert(b"12345678", b"short")
        tree.upsert(b"12345678x", b"long")
        assert tree.get(b"12345678") == b"short"
        assert tree.get(b"12345678x") == b"long"

    def test_deep_layers(self, tree):
        keys = [b"A" * 8 * depth + b"tail%d" % depth for depth in range(5)]
        for index, key in enumerate(keys):
            tree.upsert(key, b"v%d" % index)
        for index, key in enumerate(keys):
            assert tree.get(key) == b"v%d" % index

    def test_embedded_nul_bytes(self, tree):
        tree.upsert(b"a\x00b", b"1")
        tree.upsert(b"a\x00", b"2")
        tree.upsert(b"a", b"3")
        assert tree.get(b"a\x00b") == b"1"
        assert tree.get(b"a\x00") == b"2"
        assert tree.get(b"a") == b"3"

    def test_delete_from_sublayer(self, tree):
        tree.upsert(b"12345678aaaa", b"va")
        tree.upsert(b"12345678bbbb", b"vb")
        assert tree.delete(b"12345678aaaa")
        assert tree.get(b"12345678aaaa") is None
        assert tree.get(b"12345678bbbb") == b"vb"

    def test_delete_suffix_entry(self, tree):
        tree.upsert(b"12345678abc", b"v")
        assert tree.delete(b"12345678abc")
        assert tree.get(b"12345678abc") is None
        assert not tree.delete(b"12345678xyz")


class TestScan:
    def test_scan_sorted(self, tree):
        import random
        source = random.Random(4)
        model = {}
        for __ in range(400):
            key = bytes(source.randrange(97, 110)
                        for __i in range(source.randrange(1, 14)))
            value = b"v%d" % source.randrange(100)
            tree.upsert(key, value)
            model[key] = value
        got = list(tree.scan(b"\x01"))
        assert got == sorted(model.items())

    def test_scan_range_and_limit(self, tree):
        for index in range(100):
            tree.upsert(b"user%010d" % index, b"v")
        got = [k for k, __ in tree.scan(b"user%010d" % 10,
                                        b"user%010d" % 20)]
        assert got == [b"user%010d" % i for i in range(10, 20)]
        assert len(list(tree.scan(b"user", limit=5))) == 5


class TestAccounting:
    def test_footprint_matches_dram_tag(self, tree, machine):
        for index in range(300):
            tree.upsert(b"user%010d" % index, b"v" * 50)
        assert tree.dram_footprint_bytes() == machine.dram.bytes_for(
            "masstree"
        )

    def test_delete_releases_memory(self, tree):
        for index in range(100):
            tree.upsert(b"user%010d" % index, b"v" * 50)
        before = tree.dram_footprint_bytes()
        for index in range(100):
            tree.delete(b"user%010d" % index)
        assert tree.dram_footprint_bytes() < before

    def test_value_replacement_adjusts_alloc(self, tree):
        tree.upsert(b"k", b"v" * 10)
        small = tree.dram_footprint_bytes()
        tree.upsert(b"k", b"v" * 500)
        assert tree.dram_footprint_bytes() > small

    def test_ops_charge_cpu(self, tree, machine):
        busy = machine.cpu.busy_us
        tree.upsert(b"k", b"v")
        tree.get(b"k")
        assert machine.cpu.busy_us > busy
        assert machine.operations == 2

    def test_reads_cheaper_than_bwtree(self, machine):
        """The calibrated Px invariant: a MassTree read charges fewer
        core-us than a Bw-tree read of the same record."""
        from repro.bwtree import BwTree, BwTreeConfig
        masstree = MassTree(machine)
        masstree.upsert(b"user0001", b"v" * 50)
        machine.reset_accounting()
        masstree.get(b"user0001")
        mt_cost = machine.cpu.busy_us
        other = Machine.paper_default()
        bwtree = BwTree(other, BwTreeConfig())
        bwtree.upsert(b"user0001", b"v" * 50)
        other.reset_accounting()
        bwtree.get(b"user0001")
        assert mt_cost < other.cpu.busy_us
