"""LayerTree (single-layer B+-tree) behaviour."""


from repro.masstree import LayerTree, slice_of
from repro.masstree.layer import FANOUT, LAYER_MARKER, NODE_BYTES, slab_bytes


def ekey(raw: bytes, marker: int | None = None):
    padded, in_slice = slice_of(raw, 0)
    return padded, marker if marker is not None else in_slice


class TestSliceOf:
    def test_short_key_padded(self):
        padded, length = slice_of(b"abc", 0)
        assert padded == b"abc" + b"\x00" * 5
        assert length == 3

    def test_exact_slice(self):
        padded, length = slice_of(b"12345678", 0)
        assert padded == b"12345678"
        assert length == 8

    def test_offset_slicing(self):
        padded, length = slice_of(b"0123456789ab", 8)
        assert padded == b"89ab" + b"\x00" * 4
        assert length == 4

    def test_marker_distinguishes_padded_collisions(self):
        """b"abc" and b"abc\\x00" share a padded slice but not a marker."""
        a = ekey(b"abc")
        b = ekey(b"abc\x00")
        assert a[0] == b[0]
        assert a[1] != b[1]


class TestUpsertFind:
    def test_find_missing(self):
        layer = LayerTree()
        entry, steps = layer.find(ekey(b"a"))
        assert entry is None
        assert steps >= 1

    def test_upsert_creates_once(self):
        layer = LayerTree()
        entry, created, __ = layer.upsert(ekey(b"a"))
        assert created
        again, created2, __ = layer.upsert(ekey(b"a"))
        assert not created2
        assert again is entry
        assert layer.entry_count == 1

    def test_many_inserts_split_leaves(self):
        layer = LayerTree()
        for index in range(200):
            layer.upsert(ekey(b"%08d" % index))
        assert layer.leaf_count > 1
        assert layer.inner_count >= 1
        assert layer.height > 1
        assert layer.entry_count == 200

    def test_all_findable_after_splits(self):
        layer = LayerTree()
        for index in range(500):
            entry, __, __s = layer.upsert(ekey(b"%08d" % index))
            entry.value = b"%d" % index
        for index in range(500):
            entry, __ = layer.find(ekey(b"%08d" % index))
            assert entry is not None and entry.value == b"%d" % index

    def test_fanout_respected(self):
        layer = LayerTree()
        for index in range(300):
            layer.upsert(ekey(b"%08d" % index))
        leaf = layer._leftmost()
        while leaf is not None:
            assert len(leaf.keys) <= FANOUT
            leaf = leaf.next


class TestRemove:
    def test_remove_returns_entry(self):
        layer = LayerTree()
        entry, __, __s = layer.upsert(ekey(b"a"))
        removed, __ = layer.remove(ekey(b"a"))
        assert removed is entry
        assert layer.entry_count == 0
        assert layer.find(ekey(b"a"))[0] is None

    def test_remove_missing_returns_none(self):
        layer = LayerTree()
        removed, steps = layer.remove(ekey(b"a"))
        assert removed is None
        assert steps >= 1


class TestIteration:
    def test_items_in_key_order(self):
        layer = LayerTree()
        for raw in [b"m", b"a", b"z", b"b"]:
            layer.upsert(ekey(raw))
        got = [key for key, __ in layer.items()]
        assert got == sorted(got)
        assert len(got) == 4

    def test_items_from_starts_midway(self):
        layer = LayerTree()
        for index in range(50):
            layer.upsert(ekey(b"%02d" % index))
        got = [key for key, __ in layer.items_from(ekey(b"25"))]
        assert len(got) == 25

    def test_terminal_orders_before_layer_marker(self):
        layer = LayerTree()
        layer.upsert(ekey(b"abcdefgh"))                     # marker 8
        layer.upsert((slice_of(b"abcdefgh", 0)[0], LAYER_MARKER))
        markers = [marker for (__, marker), __e in layer.items()]
        assert markers == [8, LAYER_MARKER]


class TestAccounting:
    def test_stats_count_nodes_and_allocs(self):
        layer = LayerTree()
        for index in range(100):
            entry, __, __s = layer.upsert(ekey(b"%08d" % index))
            entry.value = b"v" * 10
        stats = layer.stats()
        assert stats.entries == 100
        assert stats.leaves == layer.leaf_count
        assert stats.node_bytes == (
            (layer.leaf_count + layer.inner_count) * NODE_BYTES
        )
        assert stats.alloc_bytes == 100 * slab_bytes(10 + 80)

    def test_slab_rounding(self):
        assert slab_bytes(0) == 32
        assert slab_bytes(16) == 32
        assert slab_bytes(17) == 64
        assert slab_bytes(100) % 32 == 0
        assert slab_bytes(100) >= 116
