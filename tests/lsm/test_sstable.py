"""SSTable and BloomFilter behaviour."""

import pytest

from repro.lsm import BloomFilter, SsTable


def records(count: int, prefix: bytes = b"k"):
    return [(prefix + b"%05d" % i, b"v%d" % i, i) for i in range(count)]


class TestBloomFilter:
    def test_added_keys_always_match(self):
        bloom = BloomFilter(100)
        keys = [b"key%d" % i for i in range(100)]
        for key in keys:
            bloom.add(key)
        assert all(bloom.may_contain(key) for key in keys)

    def test_false_positive_rate_reasonable(self):
        bloom = BloomFilter(1000)
        for i in range(1000):
            bloom.add(b"in%d" % i)
        false_positives = sum(
            1 for i in range(1000) if bloom.may_contain(b"out%d" % i)
        )
        assert false_positives < 100   # well under 10%

    def test_empty_filter_matches_nothing(self):
        bloom = BloomFilter(10)
        assert not bloom.may_contain(b"anything")

    def test_size_scales_with_keys(self):
        assert BloomFilter(1000).size_bytes > BloomFilter(10).size_bytes

    def test_rejects_negative(self):
        with pytest.raises(ValueError):
            BloomFilter(-1)


class TestSsTable:
    def test_requires_records(self):
        with pytest.raises(ValueError):
            SsTable([], level=0)

    def test_requires_sorted_unique(self):
        with pytest.raises(ValueError):
            SsTable([(b"b", b"v", 1), (b"a", b"v", 2)], level=0)
        with pytest.raises(ValueError):
            SsTable([(b"a", b"v", 1), (b"a", b"v", 2)], level=0)

    def test_get_found_and_missing(self):
        table = SsTable(records(100), level=1)
        found, value, seq = table.get(b"k00042")
        assert found and value == b"v42" and seq == 42
        found, __, __s = table.get(b"k99999")
        assert not found

    def test_min_max_and_covers(self):
        table = SsTable(records(10), level=1)
        assert table.min_key == b"k00000"
        assert table.max_key == b"k00009"
        assert table.covers(b"k00005")
        assert not table.covers(b"z")

    def test_overlaps(self):
        table = SsTable(records(10), level=1)
        assert table.overlaps(b"k00005", b"zzz")
        assert not table.overlaps(b"l", b"z")

    def test_tombstones_stored(self):
        table = SsTable([(b"a", None, 1)], level=0)
        found, value, __ = table.get(b"a")
        assert found and value is None

    def test_items_from(self):
        table = SsTable(records(10), level=1)
        got = [k for k, __, __s in table.items_from(b"k00007")]
        assert got == [b"k00007", b"k00008", b"k00009"]

    def test_block_count_and_index_bytes(self):
        small = SsTable(records(5), level=0)
        big = SsTable(
            [(b"%05d" % i, b"v" * 200, i) for i in range(200)], level=0
        )
        assert big.block_count > small.block_count
        assert big.resident_index_bytes > small.resident_index_bytes

    def test_unique_ids(self):
        a = SsTable(records(2), level=0)
        b = SsTable(records(2), level=0)
        assert a.table_id != b.table_id
