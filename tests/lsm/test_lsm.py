"""LSM-tree functional behaviour: CRUD, flush, compaction, costs."""

import pytest

from repro.hardware import Machine
from repro.lsm import LsmConfig, LsmTree


def small_config() -> LsmConfig:
    return LsmConfig(
        memtable_bytes=8 << 10,
        l0_compaction_trigger=3,
        level_base_bytes=64 << 10,
        target_table_bytes=32 << 10,
    )


@pytest.fixture
def tree(machine: Machine) -> LsmTree:
    return LsmTree(machine, small_config())


def load(tree: LsmTree, count: int, value_bytes: int = 60) -> dict:
    expected = {}
    for index in range(count):
        key = b"key%06d" % index
        value = bytes([index % 251]) * value_bytes
        tree.upsert(key, value)
        expected[key] = value
    return expected


class TestBasicOps:
    def test_upsert_get(self, tree):
        tree.upsert(b"k", b"v")
        assert tree.get(b"k") == b"v"

    def test_get_missing(self, tree):
        assert tree.get(b"zzz") is None

    def test_delete_via_tombstone(self, tree):
        tree.upsert(b"k", b"v")
        tree.delete(b"k")
        assert tree.get(b"k") is None

    def test_delete_survives_flush(self, tree):
        tree.upsert(b"k", b"v")
        tree.flush_memtable()
        tree.delete(b"k")
        tree.flush_memtable()
        assert tree.get(b"k") is None

    def test_overwrite_across_levels(self, tree):
        tree.upsert(b"k", b"old")
        tree.flush_memtable()
        tree.upsert(b"k", b"new")
        assert tree.get(b"k") == b"new"
        tree.flush_memtable()
        assert tree.get(b"k") == b"new"

    def test_validation(self, tree):
        with pytest.raises(TypeError):
            tree.upsert("k", b"v")
        with pytest.raises(ValueError):
            tree.get(b"")


class TestStructure:
    def test_flush_creates_l0_table(self, tree, machine):
        tree.upsert(b"k", b"v")
        writes = machine.ssd.counters.get("ssd.writes")
        table = tree.flush_memtable()
        assert table is not None
        assert len(tree.levels[0]) == 1
        assert machine.ssd.counters.get("ssd.writes") == writes + 1

    def test_flush_empty_memtable_noop(self, tree):
        assert tree.flush_memtable() is None

    def test_auto_flush_on_memtable_full(self, tree):
        load(tree, 200)
        assert tree.counters.get("lsm.memtable_flushes") > 0

    def test_compaction_triggers_and_levels_fill(self, tree):
        load(tree, 3000)
        assert tree.counters.get("lsm.compactions") > 0
        deeper = sum(len(level) for level in tree.levels[1:])
        assert deeper > 0

    def test_l1_tables_non_overlapping(self, tree):
        load(tree, 3000)
        for level in tree.levels[1:]:
            ordered = sorted(level, key=lambda t: t.min_key)
            for left, right in zip(ordered, ordered[1:]):
                assert left.max_key < right.min_key

    def test_everything_readable_after_compactions(self, tree):
        expected = load(tree, 3000)
        for key, value in expected.items():
            assert tree.get(key) == value

    def test_tombstones_dropped_at_bottom(self, tree, machine):
        expected = load(tree, 500)
        for key in expected:
            tree.delete(key)
        tree.flush_memtable()
        for level in range(len(tree.levels) - 1):
            tree.compact_level(level)
        total_records = sum(
            len(table) for level in tree.levels for table in level
        )
        assert total_records == 0


class TestCosts:
    def test_writes_never_read_flash(self, tree, machine):
        load(tree, 200)
        assert tree.counters.get("lsm.ss_ops") == 0

    def test_reads_of_flushed_data_cost_block_ios(self, tree, machine):
        expected = load(tree, 500)
        tree.flush_memtable()
        machine.reset_accounting()
        for key in list(expected)[:50]:
            result = tree.get_with_stats(key)
            assert result.found
        assert machine.ssd.counters.get("ssd.reads") > 0
        assert tree.counters.get("lsm.ss_ops") > 0

    def test_memtable_hits_avoid_io(self, tree, machine):
        tree.upsert(b"hot", b"v")
        machine.reset_accounting()
        result = tree.get_with_stats(b"hot")
        assert result.memtable_hit
        assert result.ios == 0

    def test_bloom_filters_bound_probe_ios(self, tree, machine):
        """A read of a missing key should rarely pay I/O thanks to blooms."""
        load(tree, 2000)
        tree.flush_memtable()
        machine.reset_accounting()
        misses = 200
        ios = 0
        for index in range(misses):
            ios += tree.get_with_stats(b"absent%06d" % index).ios
        assert ios < misses * 0.3

    def test_stored_bytes_and_dram_tracked(self, tree, machine):
        load(tree, 1000)
        tree.flush_memtable()
        assert tree.stored_bytes() > 0
        assert tree.dram_footprint_bytes() > 0
        assert machine.ssd.stored_bytes == tree.stored_bytes()


class TestScan:
    def test_scan_merges_all_sources(self, tree):
        expected = load(tree, 800)
        got = dict(tree.scan(b"key"))
        assert got == expected

    def test_scan_respects_tombstones(self, tree):
        expected = load(tree, 100)
        tree.flush_memtable()
        tree.delete(b"key000050")
        del expected[b"key000050"]
        got = dict(tree.scan(b"key"))
        assert got == expected

    def test_scan_range_and_limit(self, tree):
        load(tree, 100)
        got = [k for k, __ in tree.scan(b"key000010", b"key000020")]
        assert got == [b"key%06d" % i for i in range(10, 20)]
        assert len(list(tree.scan(b"key", limit=7))) == 7

    def test_scan_newest_version_wins(self, tree):
        tree.upsert(b"k", b"old")
        tree.flush_memtable()
        tree.upsert(b"k", b"new")
        assert dict(tree.scan(b"k"))[b"k"] == b"new"


class TestBlockCache:
    def make_cached_tree(self, machine, cache_bytes=64 << 10):
        cfg = small_config()
        from dataclasses import replace
        return LsmTree(machine, replace(cfg, block_cache_bytes=cache_bytes))

    def test_repeat_reads_hit_block_cache(self, machine):
        tree = self.make_cached_tree(machine)
        expected = load(tree, 300)
        tree.flush_memtable()
        key = next(iter(expected))
        first = tree.get_with_stats(key)
        second = tree.get_with_stats(key)
        assert first.ios >= 1
        assert second.ios == 0
        assert tree.counters.get("lsm.block_cache_hits") >= 1

    def test_block_cache_respects_budget(self, machine):
        tree = self.make_cached_tree(machine, cache_bytes=16 << 10)
        expected = load(tree, 2000)
        tree.flush_memtable()
        for key in expected:
            tree.get(key)
        assert tree.block_cache is not None
        assert tree.block_cache.resident_bytes <= 16 << 10
        assert machine.dram.bytes_for("lsm_block_cache") \
            == tree.block_cache.resident_bytes

    def test_compaction_purges_cached_blocks(self, machine):
        tree = self.make_cached_tree(machine)
        expected = load(tree, 1500)
        tree.flush_memtable()
        for key in list(expected)[:200]:
            tree.get(key)
        for level in range(3):
            tree.compact_level(level)
        # No cached block may reference a dropped table.
        live_ids = {t.table_id for level in tree.levels for t in level}
        assert all(table_id in live_ids
                   for table_id, __ in tree.block_cache._blocks)
        for key, value in expected.items():
            assert tree.get(key) == value

    def test_disabled_by_default(self, machine):
        tree = LsmTree(machine, small_config())
        assert tree.block_cache is None

    def test_invalid_budget_rejected(self, machine):
        from repro.lsm import BlockCache
        with pytest.raises(ValueError):
            BlockCache(machine, 0)
