"""Memtable behaviour."""

from repro.lsm import Memtable


def test_put_get_roundtrip():
    table = Memtable()
    table.put(b"k", b"v", seq=1)
    present, value, steps = table.get(b"k")
    assert present and value == b"v"
    assert steps >= 1


def test_miss():
    present, value, __ = Memtable().get(b"k")
    assert not present and value is None


def test_overwrite_updates_bytes():
    table = Memtable()
    table.put(b"k", b"v" * 10, seq=1)
    size_small = table.size_bytes
    table.put(b"k", b"v" * 100, seq=2)
    assert table.size_bytes > size_small
    assert len(table) == 1


def test_tombstone_is_present_with_none():
    table = Memtable()
    table.put(b"k", None, seq=1)
    present, value, __ = table.get(b"k")
    assert present and value is None


def test_items_sorted():
    table = Memtable()
    for key in [b"c", b"a", b"b"]:
        table.put(key, b"v", seq=1)
    assert [k for k, __, __s in table.items()] == [b"a", b"b", b"c"]


def test_items_from():
    table = Memtable()
    for index in range(10):
        table.put(b"%02d" % index, b"v", seq=index)
    got = [k for k, __, __s in table.items_from(b"05")]
    assert got == [b"%02d" % i for i in range(5, 10)]


def test_clear():
    table = Memtable()
    table.put(b"k", b"v", seq=1)
    table.clear()
    assert len(table) == 0
    assert table.size_bytes == 0


def test_seq_tracked():
    table = Memtable()
    table.put(b"k", b"v1", seq=1)
    table.put(b"k", b"v2", seq=9)
    __, __v, seq = next(iter(table.items()))
    assert seq == 9
