"""Property tests: the LSM tree matches a dict under tiny thresholds.

Tiny memtable/level limits force constant flushes and compactions, so the
merge logic is exercised on every example.
"""

from __future__ import annotations

import hypothesis.strategies as st
from hypothesis import HealthCheck, given, settings

from repro.hardware import Machine
from repro.lsm import LsmConfig, LsmTree

keys = st.binary(min_size=1, max_size=8)
values = st.binary(min_size=0, max_size=30)

operations = st.lists(
    st.one_of(
        st.tuples(st.just("upsert"), keys, values),
        st.tuples(st.just("delete"), keys, st.just(b"")),
        st.tuples(st.just("get"), keys, st.just(b"")),
    ),
    max_size=100,
)

TINY = LsmConfig(
    memtable_bytes=512,
    l0_compaction_trigger=2,
    level_base_bytes=2048,
    target_table_bytes=1024,
    max_levels=5,
)


@settings(max_examples=70, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
@given(ops=operations)
def test_lsm_matches_dict(ops):
    machine = Machine.paper_default(cores=1)
    tree = LsmTree(machine, TINY)
    model: dict = {}
    for kind, key, value in ops:
        if kind == "upsert":
            tree.upsert(key, value)
            model[key] = value
        elif kind == "delete":
            tree.delete(key)
            model.pop(key, None)
        else:
            assert tree.get(key) == model.get(key)
    for key, value in model.items():
        assert tree.get(key) == value
    assert dict(tree.scan(b"\x00")) == model


@settings(max_examples=40, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
@given(pairs=st.dictionaries(keys, values, min_size=1, max_size=50))
def test_lsm_flush_compact_preserves_everything(pairs):
    machine = Machine.paper_default(cores=1)
    tree = LsmTree(machine, TINY)
    for key, value in pairs.items():
        tree.upsert(key, value)
    tree.flush_memtable()
    for level in range(4):
        tree.compact_level(level)
    for key, value in pairs.items():
        assert tree.get(key) == value


@settings(max_examples=40, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
@given(pairs=st.dictionaries(keys, values, max_size=40), start=keys)
def test_lsm_scan_from_start(pairs, start):
    machine = Machine.paper_default(cores=1)
    tree = LsmTree(machine, TINY)
    for key, value in pairs.items():
        tree.upsert(key, value)
    got = list(tree.scan(start))
    want = [(k, pairs[k]) for k in sorted(pairs) if k >= start]
    assert got == want
