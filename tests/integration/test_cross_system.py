"""Cross-system integration: the three stores agree; the stack composes."""

import random

import pytest

from repro.bwtree import BwTree, BwTreeConfig
from repro.deuteronomy import DeuteronomyEngine
from repro.hardware import Machine
from repro.lsm import LsmConfig, LsmTree
from repro.masstree import MassTree
from repro.workloads import WorkloadGenerator, WorkloadSpec


def build_all():
    bw = BwTree(Machine.paper_default(),
                BwTreeConfig(cache_capacity_bytes=32 * 1024,
                             segment_bytes=1 << 14))
    mt = MassTree(Machine.paper_default())
    lsm = LsmTree(Machine.paper_default(), LsmConfig(
        memtable_bytes=8 << 10, l0_compaction_trigger=3,
        level_base_bytes=64 << 10, target_table_bytes=32 << 10,
    ))
    return bw, mt, lsm


def test_three_stores_agree_on_random_history():
    bw, mt, lsm = build_all()
    model = {}
    source = random.Random(99)
    keys = [b"user%06d" % i for i in range(600)]
    for __ in range(4000):
        key = source.choice(keys)
        action = source.random()
        if action < 0.6:
            value = bytes(source.randrange(256) for __i in range(40))
            bw.upsert(key, value)
            mt.upsert(key, value)
            lsm.upsert(key, value)
            model[key] = value
        elif action < 0.8:
            bw.delete(key)
            mt.delete(key)
            lsm.delete(key)
            model.pop(key, None)
        else:
            expected = model.get(key)
            assert bw.get(key) == expected
            assert mt.get(key) == expected
            assert lsm.get(key) == expected
    for key in keys:
        expected = model.get(key)
        assert bw.get(key) == expected
        assert mt.get(key) == expected
        assert lsm.get(key) == expected


def test_three_stores_agree_on_scans():
    bw, mt, lsm = build_all()
    source = random.Random(5)
    model = {}
    for __ in range(500):
        key = bytes(source.randrange(97, 123)
                    for __i in range(source.randrange(1, 10)))
        value = b"v%d" % source.randrange(1000)
        for store in (bw, mt, lsm):
            store.upsert(key, value)
        model[key] = value
    expected = sorted(model.items())
    assert list(bw.scan(b"\x00")) == expected
    assert list(mt.scan(b"\x00")) == expected
    assert list(lsm.scan(b"\x00")) == expected


def test_same_workload_ycsb_through_all_stores():
    spec = WorkloadSpec(record_count=400, value_bytes=40,
                        read_fraction=0.6, update_fraction=0.4, seed=8)
    results = {}
    for name, store in zip(("bw", "lsm"), (build_all()[0], build_all()[2])):
        for key, value in WorkloadGenerator(spec).load_items():
            store.upsert(key, value)
        generator = WorkloadGenerator(spec)
        reads = {}
        for op in generator.operations(500):
            if op.kind.value == "read":
                reads[op.key] = store.get(op.key)
            else:
                store.upsert(op.key, op.value)
        results[name] = reads
    assert results["bw"] == results["lsm"]


def test_deuteronomy_engine_against_bwtree_direct():
    """The TC's caching layers must never change read results."""
    machine = Machine.paper_default()
    engine = DeuteronomyEngine(machine,
                               BwTreeConfig(segment_bytes=1 << 14))
    direct = {}
    source = random.Random(17)
    keys = [b"acct%04d" % i for i in range(200)]
    for __ in range(1500):
        key = source.choice(keys)
        if source.random() < 0.5:
            value = b"v%d" % source.randrange(10**6)
            engine.put(key, value)
            direct[key] = value
        else:
            assert engine.get(key) == direct.get(key)


def test_machine_accounting_consistent_across_stack():
    """DRAM allocated by every component must sum to the machine total."""
    machine = Machine.paper_default()
    engine = DeuteronomyEngine(machine,
                               BwTreeConfig(segment_bytes=1 << 14))
    for index in range(500):
        engine.put(b"key%05d" % index, b"v" * 60)
    by_tag = machine.dram.by_tag()
    assert machine.dram.current_bytes == sum(by_tag.values())
    assert set(by_tag) >= {"page_cache", "mapping_table",
                           "tc_recovery_log"}


def test_simulated_throughput_sane_end_to_end():
    """A fully cached read-only run lands near the calibrated 1 Mops/core."""
    machine = Machine.paper_default(cores=1)
    tree = BwTree(machine, BwTreeConfig(segment_bytes=1 << 16))
    spec = WorkloadSpec(record_count=3000, value_bytes=100, seed=3)
    for key, value in WorkloadGenerator(spec).load_items():
        tree.upsert(key, value)
    machine.reset_accounting()
    generator = WorkloadGenerator(spec)
    for op in generator.operations(3000):
        tree.get(op.key)
    summary = machine.summary()
    assert 0.6e6 < summary.throughput_ops_per_sec < 1.6e6
    assert summary.core_us_per_op == pytest.approx(1.0, rel=0.45)
