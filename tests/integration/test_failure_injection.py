"""Failure injection: capacity exhaustion surfaces cleanly, never corrupts.

The simulated devices enforce real capacities; these tests drive stores
into the walls and check that (a) the right exception type escapes, and
(b) the store's contents remain fully readable afterwards.
"""

import pytest

from repro.bwtree import BwTree, BwTreeConfig
from repro.hardware import (
    DramFullError,
    Machine,
    SsdFullError,
    SsdSpec,
)
from repro.lsm import LsmConfig, LsmTree


class TestSsdExhaustion:
    def test_bwtree_flush_raises_ssd_full(self):
        machine = Machine(ssd_spec=SsdSpec(capacity_bytes=64 * 1024))
        tree = BwTree(machine, BwTreeConfig(
            cache_capacity_bytes=16 * 1024, segment_bytes=1 << 13,
        ))
        with pytest.raises(SsdFullError):
            for index in range(10_000):
                tree.upsert(b"key%06d" % index, b"v" * 100)

    def test_contents_survive_ssd_full(self):
        machine = Machine(ssd_spec=SsdSpec(capacity_bytes=96 * 1024))
        tree = BwTree(machine, BwTreeConfig(
            cache_capacity_bytes=24 * 1024, segment_bytes=1 << 13,
        ))
        written = {}
        try:
            for index in range(10_000):
                key = b"key%06d" % index
                tree.upsert(key, b"v" * 100)
                written[key] = b"v" * 100
        except SsdFullError:
            pass
        # Everything already in DRAM or on flash still reads correctly.
        # (Uncap the cache: with the SSD full, evictions that need dirty
        # flushes would rightly fail again.)
        tree.cache.capacity_bytes = None
        sample = list(written)[: len(written) // 2]
        for key in sample:
            assert tree.get(key) == written[key]

    def test_gc_frees_capacity_for_more_writes(self):
        machine = Machine(ssd_spec=SsdSpec(capacity_bytes=256 * 1024))
        tree = BwTree(machine, BwTreeConfig(
            cache_capacity_bytes=16 * 1024, segment_bytes=1 << 13,
        ))
        for round_index in range(6):
            for index in range(300):
                tree.upsert(b"key%04d" % index, b"v" * 60)
                tree.get(b"key%04d" % index)
            tree.collect_garbage(0.7)
        # Overwrites kept total live data small; GC kept us inside 256 KB.
        assert machine.ssd.stored_bytes <= 256 * 1024

    def test_lsm_build_raises_ssd_full(self):
        machine = Machine(ssd_spec=SsdSpec(capacity_bytes=48 * 1024))
        tree = LsmTree(machine, LsmConfig(memtable_bytes=8 << 10))
        with pytest.raises(SsdFullError):
            for index in range(10_000):
                tree.upsert(b"key%06d" % index, b"v" * 100)


class TestDramExhaustion:
    def test_uncapped_tree_hits_dram_wall(self):
        machine = Machine(dram_capacity_bytes=64 * 1024)
        tree = BwTree(machine, BwTreeConfig(segment_bytes=1 << 14))
        with pytest.raises(DramFullError):
            for index in range(10_000):
                tree.upsert(b"key%06d" % index, b"v" * 100)

    def test_capped_cache_stays_inside_dram(self):
        """A cache budget below the DRAM capacity never trips the wall."""
        machine = Machine(dram_capacity_bytes=256 * 1024)
        tree = BwTree(machine, BwTreeConfig(
            cache_capacity_bytes=64 * 1024, segment_bytes=1 << 14,
        ))
        for index in range(3_000):
            tree.upsert(b"key%06d" % index, b"v" * 50)
        assert machine.dram.current_bytes <= 256 * 1024
        assert tree.get(b"key%06d" % 0) == b"v" * 50


class TestRecoveryValidation:
    def test_recovery_detects_dangling_checkpoint(self):
        """Dropping a referenced segment behind the checkpoint's back must
        produce a RecoveryError, not silent data loss."""
        from repro.bwtree import RecoveryError
        machine = Machine.paper_default(cores=1)
        tree = BwTree(machine, BwTreeConfig(segment_bytes=1 << 13))
        for index in range(500):
            tree.upsert(b"key%05d" % index, b"v" * 60)
        tree.checkpoint()
        # Sabotage: raw GC without re-checkpointing (the documented
        # misuse that collect_garbage() exists to prevent).
        for index in range(500):
            tree.upsert(b"key%05d" % index, b"w" * 60)
            tree.get(b"key%05d" % index)
        tree.cache.capacity_bytes = 1 << 14
        tree.cache.ensure_capacity()
        tree.store.flush()
        cleaned = tree.gc.run_until_utilization(0.95)
        if cleaned == 0:
            pytest.skip("no segment was cleanable in this configuration")
        tree.store.simulate_crash()
        machine.dram.wipe()
        with pytest.raises(RecoveryError):
            BwTree.recover(machine, tree.store, tree.config)
