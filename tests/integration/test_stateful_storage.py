"""Stateful property testing of the full Bw-tree/LLAMA stack.

Hypothesis drives arbitrary interleavings of user operations and
maintenance actions (checkpoint, GC, crash+recover, cache resizing)
against a shadow dict.  This is the harshest correctness test in the
suite: every historical storage bug (the blind-update empty-base coercion,
the stale-checkpoint-after-GC hole, the write-buffer hole accounting)
would be found by one of these interleavings.
"""

from __future__ import annotations

import hypothesis.strategies as st
from hypothesis import settings
from hypothesis.stateful import (
    Bundle,
    RuleBasedStateMachine,
    initialize,
    invariant,
    precondition,
    rule,
)

from repro.bwtree import BwTree, BwTreeConfig
from repro.hardware import Machine

KEYS = st.binary(min_size=1, max_size=10)
VALUES = st.binary(min_size=0, max_size=50)


class BwTreeStateMachine(RuleBasedStateMachine):
    """The tree must match a dict under any maintenance interleaving."""

    keys = Bundle("keys")

    @initialize()
    def setup(self) -> None:
        self.machine = Machine.paper_default(cores=1)
        self.tree = BwTree(self.machine, BwTreeConfig(
            cache_capacity_bytes=4096,
            segment_bytes=1 << 12,
            consolidate_threshold=4,
            max_flash_fragments=3,
        ))
        self.model: dict = {}
        self.checkpointed = False

    # --- user operations ------------------------------------------------

    @rule(target=keys, key=KEYS)
    def remember_key(self, key: bytes) -> bytes:
        return key

    @rule(key=keys, value=VALUES)
    def upsert(self, key: bytes, value: bytes) -> None:
        self.tree.upsert(key, value)
        self.model[key] = value

    @rule(key=keys)
    def delete(self, key: bytes) -> None:
        self.tree.delete(key)
        self.model.pop(key, None)

    @rule(key=keys)
    def get(self, key: bytes) -> None:
        assert self.tree.get(key) == self.model.get(key)

    @rule(start=KEYS)
    def scan_prefix(self, start: bytes) -> None:
        got = list(self.tree.scan(start, limit=10))
        want = [(k, self.model[k]) for k in sorted(self.model)
                if k >= start][:10]
        assert got == want

    # --- maintenance --------------------------------------------------------

    @rule()
    def checkpoint(self) -> None:
        self.tree.checkpoint()
        self.checkpointed = True

    @rule()
    def collect_garbage(self) -> None:
        self.tree.collect_garbage(0.9)
        self.checkpointed = True

    @rule(capacity=st.sampled_from([2048, 4096, 16384, None]))
    def resize_cache(self, capacity) -> None:
        self.tree.cache.capacity_bytes = capacity
        self.tree.cache.ensure_capacity()

    @rule(seconds=st.floats(0.1, 100.0))
    def pass_time_and_sweep(self, seconds: float) -> None:
        self.machine.clock.advance(seconds)
        self.tree.cache.evict_idle_pages()

    @precondition(lambda self: self.checkpointed)
    @rule()
    def crash_and_recover(self) -> None:
        """Crash: state since the last checkpoint is rolled back, so the
        shadow model resets to what a full re-read observes."""
        self.tree = self.tree.simulate_crash_and_recover()
        self.model = dict(self.tree.scan(b"\x00"))

    # --- invariants -----------------------------------------------------------

    @invariant()
    def cache_within_budget(self) -> None:
        capacity = self.tree.cache.capacity_bytes
        if capacity is not None:
            assert self.tree.cache.resident_bytes <= capacity

    @invariant()
    def dram_accounting_consistent(self) -> None:
        dram = self.machine.dram
        assert dram.bytes_for("page_cache") \
            == self.tree.cache.resident_bytes

    @invariant()
    def store_occupancy_sane(self) -> None:
        store = self.tree.store
        assert 0 <= store.live_bytes <= store.stored_bytes


TestBwTreeStateMachine = BwTreeStateMachine.TestCase
TestBwTreeStateMachine.settings = settings(
    max_examples=30, stateful_step_count=40, deadline=None,
)
