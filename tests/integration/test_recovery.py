"""Crash recovery: checkpointed mapping table + redo-log replay."""

import random

import pytest

from repro.bwtree import BwTree, BwTreeConfig, RecoveryError
from repro.deuteronomy import DeuteronomyEngine, TcConfig
from repro.hardware import Machine
from repro.storage import CheckpointManager, LogStructuredStore


def fresh_tree(cache_bytes=None) -> BwTree:
    machine = Machine.paper_default(cores=1)
    return BwTree(machine, BwTreeConfig(
        cache_capacity_bytes=cache_bytes, segment_bytes=1 << 14,
    ))


class TestBwTreeRecovery:
    def test_recover_roundtrips_checkpointed_data(self):
        tree = fresh_tree()
        expected = {}
        for index in range(800):
            key, value = b"key%05d" % index, b"v%d" % index
            tree.upsert(key, value)
            expected[key] = value
        tree.checkpoint()
        recovered = tree.simulate_crash_and_recover()
        for key, value in expected.items():
            assert recovered.get(key) == value
        assert recovered.count_records() == len(expected)

    def test_recover_preserves_scan_order(self):
        tree = fresh_tree()
        source = random.Random(3)
        model = {}
        for __ in range(600):
            key = bytes(source.randrange(97, 123)
                        for __i in range(source.randrange(1, 10)))
            value = b"v%d" % source.randrange(100)
            tree.upsert(key, value)
            model[key] = value
        tree.checkpoint()
        recovered = tree.simulate_crash_and_recover()
        assert list(recovered.scan(b"\x00")) == sorted(model.items())

    def test_unflushed_updates_lost_at_crash(self):
        tree = fresh_tree()
        tree.upsert(b"durable", b"1")
        tree.checkpoint()
        tree.upsert(b"volatile", b"2")     # never checkpointed
        recovered = tree.simulate_crash_and_recover()
        assert recovered.get(b"durable") == b"1"
        assert recovered.get(b"volatile") is None

    def test_recover_without_checkpoint_raises(self):
        machine = Machine.paper_default(cores=1)
        store = LogStructuredStore(machine, segment_bytes=1 << 14)
        with pytest.raises(RecoveryError):
            BwTree.recover(machine, store)

    def test_recovered_tree_accepts_new_writes(self):
        tree = fresh_tree()
        for index in range(300):
            tree.upsert(b"key%05d" % index, b"old")
        tree.checkpoint()
        recovered = tree.simulate_crash_and_recover()
        for index in range(300, 500):
            recovered.upsert(b"key%05d" % index, b"new")
        recovered.delete(b"key%05d" % 0)
        assert recovered.get(b"key%05d" % 0) is None
        assert recovered.get(b"key%05d" % 450) == b"new"
        assert recovered.count_records() == 499

    def test_double_crash(self):
        tree = fresh_tree()
        for index in range(200):
            tree.upsert(b"key%05d" % index, b"v")
        tree.checkpoint()
        once = tree.simulate_crash_and_recover()
        once.upsert(b"extra", b"x")
        once.checkpoint()
        twice = once.simulate_crash_and_recover()
        assert twice.get(b"extra") == b"x"
        assert twice.count_records() == 201

    def test_recovery_after_deletes_and_merges(self):
        tree = fresh_tree()
        for index in range(1000):
            tree.upsert(b"key%05d" % index, b"v" * 50)
        for index in range(0, 1000, 2):
            tree.delete(b"key%05d" % index)
        for index in range(0, 1000, 20):
            tree.get(b"key%05d" % index)    # force consolidations
        tree.checkpoint()
        recovered = tree.simulate_crash_and_recover()
        for index in range(1000):
            expected = None if index % 2 == 0 else b"v" * 50
            assert recovered.get(b"key%05d" % index) == expected

    def test_recovery_with_evictions_and_delta_images(self):
        tree = fresh_tree(cache_bytes=8 * 1024)
        expected = {}
        source = random.Random(7)
        for __ in range(2000):
            key = b"key%05d" % source.randrange(400)
            value = bytes(source.randrange(256) for __i in range(40))
            tree.upsert(key, value)
            expected[key] = value
        tree.checkpoint()
        recovered = tree.simulate_crash_and_recover()
        for key, value in expected.items():
            assert recovered.get(key) == value

    def test_collect_garbage_keeps_tree_recoverable(self):
        tree = fresh_tree(cache_bytes=16 * 1024)
        expected = {}
        source = random.Random(11)
        for round_index in range(4):
            for __ in range(600):
                key = b"key%05d" % source.randrange(300)
                value = bytes(source.randrange(256)
                              for __i in range(40))
                tree.upsert(key, value)
                expected[key] = value
            for __ in range(150):
                tree.get(b"key%05d" % source.randrange(300))
            tree.collect_garbage(0.85)
        recovered = tree.simulate_crash_and_recover()
        for key, value in expected.items():
            assert recovered.get(key) == value

    def test_gc_relocates_checkpoint_image(self):
        tree = fresh_tree(cache_bytes=16 * 1024)
        for index in range(500):
            tree.upsert(b"key%05d" % index, b"v" * 60)
        tree.checkpoint()
        before = tree.checkpoints.latest_addr
        # Rewrite everything so old segments (incl. possibly the one with
        # the checkpoint) become mostly dead, then clean.
        for index in range(500):
            tree.upsert(b"key%05d" % index, b"w" * 60)
            tree.get(b"key%05d" % index)
        tree.collect_garbage(0.9)
        assert CheckpointManager.find_latest(tree.store) is not None
        del before

    def test_empty_tree_checkpoint_recovery(self):
        tree = fresh_tree()
        tree.checkpoint()
        recovered = tree.simulate_crash_and_recover()
        assert recovered.get(b"anything") is None
        recovered.upsert(b"k", b"v")
        assert recovered.get(b"k") == b"v"


class TestEngineRecovery:
    def make_engine(self) -> DeuteronomyEngine:
        machine = Machine.paper_default(cores=1)
        return DeuteronomyEngine(
            machine,
            BwTreeConfig(segment_bytes=1 << 14),
            TcConfig(log_buffer_bytes=1 << 12,
                     log_retain_budget_bytes=1 << 14,
                     read_cache_bytes=1 << 13),
        )

    def test_committed_transactions_survive_crash(self):
        engine = self.make_engine()
        for index in range(300):
            engine.put(b"key%04d" % index, b"v%d" % index)
        engine.checkpoint()
        recovered = DeuteronomyEngine.recover(engine)
        for index in range(300):
            assert recovered.get(b"key%04d" % index) == b"v%d" % index

    def test_redo_replay_restores_post_checkpoint_commits(self):
        engine = self.make_engine()
        engine.put(b"base", b"1")
        engine.checkpoint()
        # Post-checkpoint commits, then force only the LOG to flash (the
        # data pages stay dirty): redo replay must restore them.
        for index in range(50):
            engine.put(b"late%03d" % index, b"L%d" % index)
        engine.tc.log.flush()
        recovered = DeuteronomyEngine.recover(engine)
        assert recovered.get(b"base") == b"1"
        for index in range(50):
            assert recovered.get(b"late%03d" % index) == b"L%d" % index
        assert recovered.tc.counters.get("tc.redo_replayed") >= 50

    def test_unflushed_log_tail_is_lost(self):
        engine = self.make_engine()
        engine.put(b"durable", b"1")
        engine.checkpoint()
        engine.put(b"volatile", b"2")   # redo record still in open buffer
        recovered = DeuteronomyEngine.recover(engine)
        assert recovered.get(b"durable") == b"1"
        assert recovered.get(b"volatile") is None

    def test_deletes_replayed(self):
        engine = self.make_engine()
        engine.put(b"k", b"v")
        engine.checkpoint()
        engine.delete(b"k")
        engine.tc.log.flush()
        recovered = DeuteronomyEngine.recover(engine)
        assert recovered.get(b"k") is None

    def test_recovered_engine_runs_transactions(self):
        engine = self.make_engine()
        engine.put(b"a", b"1")
        engine.checkpoint()
        recovered = DeuteronomyEngine.recover(engine)
        with recovered.transaction() as txn:
            value = recovered.tc.read(txn, b"a")
            recovered.tc.write(txn, b"b", value)
        assert recovered.get(b"b") == b"1"

    def test_replay_order_newest_wins(self):
        engine = self.make_engine()
        engine.checkpoint()
        engine.put(b"k", b"old")
        engine.put(b"k", b"new")
        engine.tc.log.flush()
        recovered = DeuteronomyEngine.recover(engine)
        assert recovered.get(b"k") == b"new"


class TestSyncCommit:
    def make_engine(self, sync: bool) -> DeuteronomyEngine:
        machine = Machine.paper_default(cores=1)
        return DeuteronomyEngine(
            machine,
            BwTreeConfig(segment_bytes=1 << 14),
            TcConfig(log_buffer_bytes=1 << 12,
                     log_retain_budget_bytes=1 << 14,
                     read_cache_bytes=1 << 13,
                     sync_commit=sync),
        )

    def test_sync_commits_survive_crash_without_checkpoint_flush(self):
        engine = self.make_engine(sync=True)
        engine.put(b"base", b"0")
        engine.checkpoint()
        # Post-checkpoint sync commits: durable without any extra flush.
        for index in range(20):
            engine.put(b"key%02d" % index, b"v%d" % index)
        recovered = DeuteronomyEngine.recover(engine)
        for index in range(20):
            assert recovered.get(b"key%02d" % index) == b"v%d" % index

    def test_async_commits_may_be_lost(self):
        engine = self.make_engine(sync=False)
        engine.put(b"base", b"0")
        engine.checkpoint()
        engine.put(b"tail", b"volatile")
        recovered = DeuteronomyEngine.recover(engine)
        assert recovered.get(b"tail") is None

    def test_sync_commit_costs_more_io(self):
        writes = {}
        for sync in (False, True):
            engine = self.make_engine(sync)
            engine.machine.reset_accounting()
            for index in range(50):
                engine.put(b"key%02d" % (index % 25), b"v")
            writes[sync] = engine.machine.ssd.counters.get("ssd.writes")
        assert writes[True] > writes[False]

    def test_read_only_sync_commit_does_not_flush(self):
        engine = self.make_engine(sync=True)
        engine.put(b"k", b"v")
        flushes_before = engine.tc.log.flushes
        txn = engine.tc.begin()
        engine.tc.read(txn, b"k")
        engine.tc.commit(txn)
        assert engine.tc.log.flushes == flushes_before


class TestGroupCommitRecovery:
    """Crash behavior of the batched (group-commit) update path."""

    def make_engine(self, sync: bool = False) -> DeuteronomyEngine:
        machine = Machine.paper_default(cores=1)
        return DeuteronomyEngine(
            machine,
            BwTreeConfig(segment_bytes=1 << 14),
            TcConfig(log_buffer_bytes=1 << 12,
                     log_retain_budget_bytes=1 << 14,
                     read_cache_bytes=1 << 13,
                     sync_commit=sync),
        )

    def test_flushed_batch_survives_unflushed_batch_lost(self):
        engine = self.make_engine(sync=False)
        engine.checkpoint()
        engine.multi_put([(b"early%03d" % i, b"E%d" % i) for i in range(40)])
        engine.tc.log.flush()
        engine.multi_put([(b"late%03d" % i, b"L%d" % i) for i in range(40)])
        recovered = DeuteronomyEngine.recover(engine)
        for index in range(40):
            assert recovered.get(b"early%03d" % index) == b"E%d" % index
            assert recovered.get(b"late%03d" % index) is None

    def test_sync_group_commit_durable_without_checkpoint(self):
        engine = self.make_engine(sync=True)
        engine.put(b"base", b"0")
        engine.checkpoint()
        engine.multi_put([(b"key%03d" % i, b"v%d" % i) for i in range(30)])
        recovered = DeuteronomyEngine.recover(engine)
        for index in range(30):
            assert recovered.get(b"key%03d" % index) == b"v%d" % index

    def test_crash_mid_batch_recovers_a_prefix(self):
        # Values big enough that the 4KB log buffer fills (and flushes)
        # several times inside one large batch; a crash before the final
        # flush must leave exactly a prefix of the batch durable — never
        # a record without its predecessors.
        engine = self.make_engine(sync=False)
        engine.checkpoint()
        keys = [b"key%03d" % i for i in range(80)]
        engine.multi_put([(key, b"x" * 100) for key in keys])
        assert engine.tc.log.flushes > 0      # buffer filled mid-batch
        recovered = DeuteronomyEngine.recover(engine)
        survived = [recovered.get(key) is not None for key in keys]
        assert any(survived) and not all(survived)
        boundary = survived.index(False)
        assert all(survived[:boundary])
        assert not any(survived[boundary:])

    def test_batched_and_per_op_recover_to_the_same_state(self):
        items = [(b"key%03d" % (i % 30), b"v%d" % i) for i in range(90)]
        recovered = {}
        for mode in ("per_op", "batched"):
            engine = self.make_engine(sync=False)
            if mode == "per_op":
                for key, value in items:
                    engine.put(key, value)
            else:
                for start in range(0, len(items), 16):
                    engine.multi_put(items[start:start + 16])
            engine.checkpoint()
            recovered[mode] = DeuteronomyEngine.recover(engine)
        for index in range(30):
            key = b"key%03d" % index
            assert (recovered["per_op"].get(key)
                    == recovered["batched"].get(key))


class TestRecoveredFlashLiveness:
    """Regression: liveness flags must be rebuilt from the recovered state.

    Pre-crash page flushes invalidate the checkpoint-referenced flash
    images in favour of replacement writes that may never become durable.
    After a crash those flags are stale, and a GC pass that trusted them
    dropped segments the recovered mapping table still referenced.
    """

    def test_gc_after_recovery_keeps_checkpoint_referenced_images(self):
        # Distilled from the stateful-storage hypothesis failure.
        machine = Machine.paper_default(cores=1)
        tree = BwTree(machine, BwTreeConfig(
            cache_capacity_bytes=4096, segment_bytes=1 << 12,
            consolidate_threshold=4, max_flash_fragments=3))
        key = b"\x00"
        tree.checkpoint()
        tree.delete(key)
        tree.upsert(key, b"")
        tree.checkpoint()
        tree.delete(key)
        tree.delete(key)
        machine.clock.advance(45.0)
        tree.cache.evict_idle_pages()
        tree = tree.simulate_crash_and_recover()
        assert list(tree.scan(b"\x00")) == [(key, b"")]
        tree.collect_garbage(0.9)
        tree.upsert(key, b"")
        tree.upsert(key, b"")
        tree.checkpoint()          # KeyError'd before the fix
        assert tree.get(key) == b""
        # A second crash survives too: GC re-checkpointed consistently.
        tree = tree.simulate_crash_and_recover()
        assert tree.get(key) == b""

    def test_gc_after_recovery_preserves_all_checkpointed_records(self):
        tree = fresh_tree()
        for index in range(300):
            tree.upsert(b"key%05d" % index, b"v%d" % index)
        tree.checkpoint()
        # Dirty and flush pages: invalidates the checkpointed images in
        # favour of replacements, some of which stay in the open buffer.
        for index in range(0, 300, 3):
            tree.upsert(b"key%05d" % index, b"w%d" % index)
        for entry in tree.mapping_table.entries():
            if entry.dirty:
                tree.cache.flush_page(entry)
        recovered = tree.simulate_crash_and_recover()
        recovered.collect_garbage(0.5)
        for index in range(300):
            assert recovered.get(b"key%05d" % index) == b"v%d" % index


class TestRecoveryIdempotence:
    """Regression: recovering the same crashed engine twice must not wipe
    the replacement engine's DRAM / open write buffer a second time."""

    def make_engine(self) -> DeuteronomyEngine:
        machine = Machine.paper_default(cores=1)
        return DeuteronomyEngine(
            machine, BwTreeConfig(segment_bytes=1 << 14),
            TcConfig(log_buffer_bytes=1 << 12),
        )

    def test_double_recover_returns_the_same_engine(self):
        crashed = self.make_engine()
        for index in range(100):
            crashed.put(b"key%03d" % index, b"v%d" % index)
        crashed.checkpoint()
        first = DeuteronomyEngine.recover(crashed)
        again = DeuteronomyEngine.recover(crashed)
        assert again is first
        for index in range(100):
            assert first.get(b"key%03d" % index) == b"v%d" % index

    def test_repeat_recover_does_not_wipe_new_writes(self):
        crashed = self.make_engine()
        crashed.put(b"durable", b"1")
        crashed.checkpoint()
        recovered = DeuteronomyEngine.recover(crashed)
        recovered.put(b"after", b"2")      # resident, not yet durable
        DeuteronomyEngine.recover(crashed)  # must be a no-op
        assert recovered.get(b"after") == b"2"
        assert recovered.machine.dram.current_bytes > 0

    def test_recover_in_a_loop_is_safe(self):
        shards = []
        for shard in range(3):
            engine = self.make_engine()
            engine.put(b"shard%d" % shard, b"v")
            engine.checkpoint()
            shards.append(engine)
        # Recover every shard twice, interleaved, as a routing layer
        # retrying a fleet recovery might.
        recovered = [DeuteronomyEngine.recover(s) for s in shards]
        recovered_again = [DeuteronomyEngine.recover(s) for s in shards]
        assert recovered == recovered_again or all(
            a is b for a, b in zip(recovered, recovered_again))
        for shard, engine in enumerate(recovered):
            assert engine.get(b"shard%d" % shard) == b"v"
