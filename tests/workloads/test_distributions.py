"""Key-popularity distributions: skew, determinism, bounds."""

import math
from collections import Counter

import pytest

from repro.workloads import (
    HotspotChooser,
    LatestChooser,
    ScrambledZipfianChooser,
    UniformChooser,
    ZipfianChooser,
    access_interval_seconds,
    make_chooser,
)


class TestBounds:
    @pytest.mark.parametrize("kind", [
        "uniform", "zipfian", "scrambled", "hotspot", "latest",
    ])
    def test_indices_in_range(self, kind):
        chooser = make_chooser(kind, 1000, seed=1)
        for index in chooser.sample(2000):
            assert 0 <= index < 1000

    def test_unknown_kind(self):
        with pytest.raises(ValueError):
            make_chooser("nope", 10)

    def test_zero_items_rejected(self):
        with pytest.raises(ValueError):
            UniformChooser(0)


class TestDeterminism:
    @pytest.mark.parametrize("kind", [
        "uniform", "zipfian", "scrambled", "hotspot",
    ])
    def test_same_seed_same_stream(self, kind):
        a = make_chooser(kind, 500, seed=7).sample(200)
        b = make_chooser(kind, 500, seed=7).sample(200)
        assert a == b

    def test_different_seed_different_stream(self):
        a = make_chooser("zipfian", 500, seed=1).sample(200)
        b = make_chooser("zipfian", 500, seed=2).sample(200)
        assert a != b


class TestZipfian:
    def test_rank_zero_is_hottest(self):
        counts = Counter(ZipfianChooser(1000, seed=3).sample(20000))
        hottest = counts.most_common(1)[0][0]
        assert hottest == 0

    def test_skew_concentrates_mass(self):
        counts = Counter(ZipfianChooser(1000, theta=0.99, seed=3)
                         .sample(20000))
        top10 = sum(count for __, count in counts.most_common(10))
        assert top10 > 20000 * 0.3

    def test_lower_theta_less_skewed(self):
        high = Counter(ZipfianChooser(1000, theta=0.99, seed=3)
                       .sample(20000))
        low = Counter(ZipfianChooser(1000, theta=0.5, seed=3)
                      .sample(20000))
        top_high = sum(c for __, c in high.most_common(10))
        top_low = sum(c for __, c in low.most_common(10))
        assert top_high > top_low

    def test_theta_validation(self):
        with pytest.raises(ValueError):
            ZipfianChooser(100, theta=1.0)
        with pytest.raises(ValueError):
            ZipfianChooser(100, theta=0.0)


class TestScrambled:
    def test_hot_keys_spread_out(self):
        """The hottest keys should not cluster at low indices."""
        counts = Counter(ScrambledZipfianChooser(10_000, seed=3)
                         .sample(30000))
        hot = [key for key, __ in counts.most_common(20)]
        assert max(hot) > 5000     # some hot keys land in the upper half
        assert len(set(hot)) == 20

    def test_same_skew_as_zipfian(self):
        scrambled = Counter(ScrambledZipfianChooser(1000, seed=3)
                            .sample(20000))
        top10 = sum(c for __, c in scrambled.most_common(10))
        assert top10 > 20000 * 0.25


class TestHotspot:
    def test_hot_set_gets_hot_fraction(self):
        chooser = HotspotChooser(1000, hot_fraction=0.2,
                                 hot_access_fraction=0.8, seed=5)
        sample = chooser.sample(20000)
        hot_hits = sum(1 for index in sample if index < 200)
        assert 0.75 < hot_hits / len(sample) < 0.85

    def test_degenerate_all_hot(self):
        chooser = HotspotChooser(100, hot_fraction=1.0,
                                 hot_access_fraction=0.5, seed=5)
        assert all(0 <= i < 100 for i in chooser.sample(500))

    def test_validation(self):
        with pytest.raises(ValueError):
            HotspotChooser(10, hot_fraction=0.0)
        with pytest.raises(ValueError):
            HotspotChooser(10, hot_access_fraction=1.5)


class TestLatest:
    def test_newest_is_hottest(self):
        chooser = LatestChooser(1000, seed=3)
        counts = Counter(chooser.sample(20000))
        assert counts.most_common(1)[0][0] == 999

    def test_grow_shifts_latest(self):
        chooser = LatestChooser(100, seed=3)
        for __ in range(100):
            chooser.grow()
        assert chooser.item_count == 200
        assert all(0 <= i < 200 for i in chooser.sample(1000))


def test_access_interval():
    assert access_interval_seconds(10.0) == pytest.approx(0.1)
    assert math.isinf(access_interval_seconds(0.0))
