"""Trace record / save / load / replay."""

import pytest

from repro.bwtree import BwTree, BwTreeConfig
from repro.hardware import Machine
from repro.lsm import LsmConfig, LsmTree
from repro.workloads import (
    OpKind,
    Trace,
    WorkloadGenerator,
    WorkloadSpec,
)


def sample_trace(count=200, **overrides) -> Trace:
    spec = WorkloadSpec(record_count=100, read_fraction=0.5,
                        update_fraction=0.3, insert_fraction=0.1,
                        scan_fraction=0.1, seed=6, **overrides)
    return Trace.record(WorkloadGenerator(spec).operations(count))


def test_record_materializes_count():
    spec = WorkloadSpec(record_count=50)
    trace = Trace.record(WorkloadGenerator(spec).operations(1000),
                         count=40)
    assert len(trace) == 40


def test_roundtrip_through_file(tmp_path):
    trace = sample_trace()
    path = trace.save(tmp_path / "workload.trace")
    loaded = Trace.load(path)
    assert loaded.operations == trace.operations


def test_roundtrip_binary_keys(tmp_path):
    operations = [
        # Keys with tabs/newlines/NULs must survive the text format.
        type(sample_trace(count=1).operations[0])(
            kind=OpKind.READ, key=b"\x00\t\nweird\xff",
        ),
    ]
    trace = Trace(operations)
    loaded = Trace.load(trace.save(tmp_path / "bin.trace"))
    assert loaded.operations[0].key == b"\x00\t\nweird\xff"


def test_load_rejects_foreign_files(tmp_path):
    path = tmp_path / "not.trace"
    path.write_text("something else\n")
    with pytest.raises(ValueError):
        Trace.load(path)


def test_load_rejects_bad_rows(tmp_path):
    path = tmp_path / "bad.trace"
    path.write_text("repro-trace-v1\nread\tdeadbeef\n")
    with pytest.raises(ValueError):
        Trace.load(path)
    path.write_text("repro-trace-v1\nfly\tdeadbeef\t-\t0\n")
    with pytest.raises(ValueError):
        Trace.load(path)


def test_kind_counts_and_keys():
    trace = sample_trace(count=300)
    counts = trace.kind_counts()
    assert sum(counts.values()) == 300
    assert counts.get(OpKind.READ, 0) > 0
    assert 0 < trace.keys_touched() <= 300


def test_replay_identical_across_stores():
    """The same trace drives two different stores to identical reads."""
    trace = sample_trace(count=400)
    outcomes = []
    for build in (
        lambda m: BwTree(m, BwTreeConfig(segment_bytes=1 << 16)),
        lambda m: LsmTree(m, LsmConfig(memtable_bytes=16 << 10)),
    ):
        machine = Machine.paper_default(cores=1)
        store = build(machine)
        spec = WorkloadSpec(record_count=100, seed=6)
        for key, value in WorkloadGenerator(spec).load_items():
            store.upsert(key, value)
        stats = trace.replay(store)
        outcomes.append((stats.operations, stats.not_found))
    assert outcomes[0] == outcomes[1]


def test_replay_twice_is_deterministic():
    trace = sample_trace(count=300)
    results = []
    for __ in range(2):
        machine = Machine.paper_default(cores=1)
        store = BwTree(machine, BwTreeConfig(segment_bytes=1 << 16))
        spec = WorkloadSpec(record_count=100, seed=6)
        for key, value in WorkloadGenerator(spec).load_items():
            store.upsert(key, value)
        stats = trace.replay(store)
        results.append((stats.reads, stats.updates, stats.not_found,
                        machine.summary().core_us_per_op))
    assert results[0] == results[1]
