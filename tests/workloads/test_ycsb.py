"""YCSB-style workload specs, generation and application to stores."""

import pytest

from repro.bwtree import BwTree, BwTreeConfig
from repro.hardware import Machine
from repro.workloads import (
    OpKind,
    WorkloadGenerator,
    WorkloadSpec,
    apply_operations,
)


class TestSpec:
    def test_fractions_must_sum_to_one(self):
        with pytest.raises(ValueError):
            WorkloadSpec(read_fraction=0.5, update_fraction=0.6)

    def test_standard_mixes(self):
        assert WorkloadSpec.ycsb_a().update_fraction == 0.5
        assert WorkloadSpec.ycsb_b().read_fraction == 0.95
        assert WorkloadSpec.ycsb_c().read_fraction == 1.0
        assert WorkloadSpec.ycsb_d().insert_fraction == 0.05
        assert WorkloadSpec.ycsb_d().distribution == "latest"
        assert WorkloadSpec.ycsb_e().scan_fraction == 0.95
        assert WorkloadSpec.ycsb_f().rmw_fraction == 0.5

    def test_record_count_validation(self):
        with pytest.raises(ValueError):
            WorkloadSpec(record_count=0)


class TestGenerator:
    def test_load_items_count_and_keys(self):
        spec = WorkloadSpec(record_count=100, value_bytes=50)
        items = list(WorkloadGenerator(spec).load_items())
        assert len(items) == 100
        assert items[0][0] == b"user0000000000"
        assert all(len(value) == 50 for __, value in items)

    def test_values_deterministic_per_seed(self):
        spec = WorkloadSpec(record_count=10, seed=3)
        a = list(WorkloadGenerator(spec).load_items())
        b = list(WorkloadGenerator(spec).load_items())
        assert a == b

    def test_values_compressible(self):
        import zlib
        spec = WorkloadSpec(record_count=20, value_bytes=500)
        generator = WorkloadGenerator(spec)
        raw = b"".join(v for __, v in generator.load_items())
        assert len(zlib.compress(raw)) < len(raw) * 0.8

    def test_operation_mix_matches_fractions(self):
        spec = WorkloadSpec(record_count=1000, read_fraction=0.7,
                            update_fraction=0.3, seed=5)
        ops = list(WorkloadGenerator(spec).operations(5000))
        reads = sum(1 for op in ops if op.kind is OpKind.READ)
        assert 0.65 < reads / 5000 < 0.75
        assert all(op.kind in (OpKind.READ, OpKind.UPDATE) for op in ops)

    def test_inserts_extend_keyspace(self):
        spec = WorkloadSpec(record_count=100, read_fraction=0.0,
                            insert_fraction=1.0)
        generator = WorkloadGenerator(spec)
        ops = list(generator.operations(10))
        assert [op.key for op in ops] == [
            b"user%010d" % (100 + i) for i in range(10)
        ]

    def test_scan_ops_have_length(self):
        spec = WorkloadSpec(record_count=100, read_fraction=0.0,
                            scan_fraction=1.0, max_scan_length=7)
        ops = list(WorkloadGenerator(spec).operations(20))
        assert all(1 <= op.scan_length <= 7 for op in ops)

    def test_generated_keys_within_inserted_range(self):
        spec = WorkloadSpec(record_count=50, distribution="uniform")
        generator = WorkloadGenerator(spec)
        for op in generator.operations(500):
            index = int(op.key[len(spec.key_prefix):])
            assert index < 50


class TestApplyOperations:
    @pytest.fixture
    def loaded(self, machine: Machine):
        spec = WorkloadSpec(record_count=500, value_bytes=60, seed=11)
        tree = BwTree(machine, BwTreeConfig(segment_bytes=1 << 16))
        generator = WorkloadGenerator(spec)
        for key, value in generator.load_items():
            tree.upsert(key, value)
        return tree, spec

    def test_reads_all_found(self, loaded):
        tree, spec = loaded
        generator = WorkloadGenerator(spec)
        stats = apply_operations(tree, generator.operations(500))
        assert stats.operations == 500
        assert stats.not_found == 0
        assert stats.reads == 500   # ycsb-c default: all reads

    def test_mixed_stats_counted(self, loaded):
        tree, __ = loaded
        spec = WorkloadSpec(record_count=500, read_fraction=0.4,
                            update_fraction=0.3, insert_fraction=0.1,
                            scan_fraction=0.1, rmw_fraction=0.1, seed=11)
        generator = WorkloadGenerator(spec)
        stats = apply_operations(tree, generator.operations(400))
        assert stats.operations == 400
        assert (stats.reads + stats.updates + stats.inserts
                + stats.scans + stats.rmws) == 400
        assert stats.scanned_records > 0

    def test_ss_fraction_zero_when_cached(self, loaded):
        tree, spec = loaded
        generator = WorkloadGenerator(spec)
        stats = apply_operations(tree, generator.operations(300))
        assert stats.ss_fraction == 0.0

    def test_ss_fraction_positive_when_cold(self, machine):
        spec = WorkloadSpec(record_count=1000, value_bytes=100, seed=11)
        tree = BwTree(machine, BwTreeConfig(
            cache_capacity_bytes=16 * 1024, segment_bytes=1 << 16,
        ))
        generator = WorkloadGenerator(spec)
        for key, value in generator.load_items():
            tree.upsert(key, value)
        tree.checkpoint()
        tree.store.flush()
        stats = apply_operations(tree, generator.operations(300))
        assert stats.ss_fraction > 0.3
        assert stats.ios >= stats.ss_operations
