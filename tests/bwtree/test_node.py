"""Inner-node invariants."""

import pytest

from repro.bwtree import InnerNode


def node(keys, children):
    return InnerNode(-1, keys, children)


def test_requires_negative_id():
    with pytest.raises(ValueError):
        InnerNode(0, [b"m"], [1, 2])


def test_children_count_invariant():
    with pytest.raises(ValueError):
        node([b"m"], [1])
    with pytest.raises(ValueError):
        node([b"m"], [1, 2, 3])


def test_keys_strictly_sorted():
    with pytest.raises(ValueError):
        node([b"m", b"m"], [1, 2, 3])
    with pytest.raises(ValueError):
        node([b"n", b"m"], [1, 2, 3])


def test_child_for_routes_half_open_ranges():
    routing = node([b"g", b"m"], [1, 2, 3])
    assert routing.child_for(b"a") == 1
    assert routing.child_for(b"g") == 2   # separator belongs to the right
    assert routing.child_for(b"k") == 2
    assert routing.child_for(b"m") == 3
    assert routing.child_for(b"z") == 3


def test_child_index_and_missing_child():
    routing = node([b"g"], [1, 2])
    assert routing.child_index(2) == 1
    with pytest.raises(KeyError):
        routing.child_index(99)


def test_insert_separator_keeps_order():
    routing = node([b"g", b"s"], [1, 2, 3])
    routing.insert_separator(b"m", 9)
    assert routing.keys == [b"g", b"m", b"s"]
    assert routing.children == [1, 2, 9, 3]
    assert routing.child_for(b"m") == 9
    assert routing.child_for(b"l") == 2


def test_insert_duplicate_separator_rejected():
    routing = node([b"g"], [1, 2])
    with pytest.raises(ValueError):
        routing.insert_separator(b"g", 9)


def test_remove_middle_child_merges_range_left():
    routing = node([b"g", b"m"], [1, 2, 3])
    separator = routing.remove_child(2)
    assert separator == b"g"
    assert routing.children == [1, 3]
    # keys in [g, m) now route to child 1's successor range:
    assert routing.child_for(b"h") == 1


def test_remove_leftmost_child():
    routing = node([b"g", b"m"], [1, 2, 3])
    separator = routing.remove_child(1)
    assert separator is None
    assert routing.children == [2, 3]
    assert routing.child_for(b"a") == 2


def test_remove_only_sibling_leaves_no_keys():
    routing = node([b"g"], [1, 2])
    routing.remove_child(2)
    assert routing.keys == []
    assert routing.children == [1]


def test_split_pushes_middle_key_up():
    routing = node([b"b", b"d", b"f", b"h"], [1, 2, 3, 4, 5])
    push_up, right = routing.split(-99)
    assert push_up == b"f"
    assert routing.keys == [b"b", b"d"]
    assert routing.children == [1, 2, 3]
    assert right.keys == [b"h"]
    assert right.children == [4, 5]
    assert right.node_id == -99


def test_split_too_small_rejected():
    with pytest.raises(ValueError):
        node([b"m"], [1, 2]).split(-2)


def test_size_bytes_counts_keys_and_children():
    small = node([b"a"], [1, 2])
    big = node([b"a", b"bb"], [1, 2, 3])
    assert big.size_bytes > small.size_bytes


def test_search_steps_logarithmic():
    assert node([b"a"], [1, 2]).search_steps() == 1
    wide = InnerNode(-1, [b"k%03d" % i for i in range(100)],
                     list(range(101)))
    assert wide.search_steps() == 7
