"""Property-based tests: the Bw-tree behaves exactly like a dict.

Hypothesis drives random operation sequences against a shadow model,
across both uncapped and eviction-heavy cache configurations — the
configuration space where the delta-chain / flush / fetch machinery has
historically hidden bugs.
"""

from __future__ import annotations

import hypothesis.strategies as st
from hypothesis import HealthCheck, given, settings

from repro.bwtree import BwTree, BwTreeConfig
from repro.hardware import Machine

keys = st.binary(min_size=1, max_size=12)
values = st.binary(min_size=0, max_size=60)

operations = st.lists(
    st.one_of(
        st.tuples(st.just("upsert"), keys, values),
        st.tuples(st.just("delete"), keys, st.just(b"")),
        st.tuples(st.just("get"), keys, st.just(b"")),
    ),
    max_size=120,
)


def run_against_model(ops, config: BwTreeConfig) -> None:
    machine = Machine.paper_default(cores=1)
    tree = BwTree(machine, config)
    model: dict = {}
    for kind, key, value in ops:
        if kind == "upsert":
            tree.upsert(key, value)
            model[key] = value
        elif kind == "delete":
            tree.delete(key)
            model.pop(key, None)
        else:
            assert tree.get(key) == model.get(key)
    # Final full verification, point and scan.
    for key, value in model.items():
        assert tree.get(key) == value
    assert list(tree.scan(b"\x00")) == sorted(model.items())


@settings(max_examples=60, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
@given(ops=operations)
def test_uncapped_tree_matches_dict(ops):
    run_against_model(ops, BwTreeConfig(segment_bytes=1 << 14))


@settings(max_examples=60, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
@given(ops=operations)
def test_eviction_heavy_tree_matches_dict(ops):
    """A pathologically small cache: nearly every read is an SS op."""
    run_against_model(ops, BwTreeConfig(
        cache_capacity_bytes=2048,
        segment_bytes=1 << 12,
        consolidate_threshold=3,
        max_flash_fragments=2,
    ))


@settings(max_examples=40, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
@given(ops=operations)
def test_record_cache_tree_matches_dict(ops):
    run_against_model(ops, BwTreeConfig(
        cache_capacity_bytes=2048,
        segment_bytes=1 << 12,
        record_cache=True,
        consolidate_threshold=4,
    ))


@settings(max_examples=25, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
@given(ops=operations, seed=st.integers(0, 2**16))
def test_checkpoint_gc_preserves_model(ops, seed):
    """Interleave checkpoints and GC with operations; contents survive."""
    machine = Machine.paper_default(cores=1)
    tree = BwTree(machine, BwTreeConfig(
        cache_capacity_bytes=4096, segment_bytes=1 << 12,
    ))
    model: dict = {}
    for index, (kind, key, value) in enumerate(ops):
        if kind == "upsert":
            tree.upsert(key, value)
            model[key] = value
        elif kind == "delete":
            tree.delete(key)
            model.pop(key, None)
        else:
            assert tree.get(key) == model.get(key)
        if index % 17 == seed % 17:
            tree.checkpoint()
        if index % 29 == seed % 29:
            tree.gc.run_until_utilization(0.9, max_passes=5)
    for key, value in model.items():
        assert tree.get(key) == value


@settings(max_examples=40, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
@given(pairs=st.dictionaries(keys, values, max_size=60),
       start=keys, end=keys)
def test_scan_matches_sorted_slice(pairs, start, end):
    machine = Machine.paper_default(cores=1)
    tree = BwTree(machine, BwTreeConfig(segment_bytes=1 << 14))
    for key, value in pairs.items():
        tree.upsert(key, value)
    lo, hi = (start, end) if start <= end else (end, start)
    got = list(tree.scan(lo, hi))
    want = [(k, pairs[k]) for k in sorted(pairs) if lo <= k < hi]
    assert got == want
