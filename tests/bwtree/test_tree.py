"""Bw-tree functional behaviour: CRUD, scans, SMOs, caching, counters."""

import pytest

from repro.bwtree import BwTree, BwTreeConfig
from repro.hardware import Machine

from ..conftest import load_keys


class TestBasicOps:
    def test_get_missing_returns_none(self, small_tree):
        assert small_tree.get(b"nope") is None

    def test_upsert_then_get(self, small_tree):
        small_tree.upsert(b"k", b"v")
        assert small_tree.get(b"k") == b"v"

    def test_upsert_overwrites(self, small_tree):
        small_tree.upsert(b"k", b"v1")
        small_tree.upsert(b"k", b"v2")
        assert small_tree.get(b"k") == b"v2"

    def test_delete_removes(self, small_tree):
        small_tree.upsert(b"k", b"v")
        small_tree.delete(b"k")
        assert small_tree.get(b"k") is None

    def test_delete_missing_is_silent(self, small_tree):
        small_tree.delete(b"ghost")
        assert small_tree.get(b"ghost") is None

    def test_insert_only_if_absent(self, small_tree):
        assert small_tree.insert(b"k", b"v1")
        assert not small_tree.insert(b"k", b"v2")
        assert small_tree.get(b"k") == b"v1"

    def test_update_only_if_present(self, small_tree):
        assert not small_tree.update(b"k", b"v")
        small_tree.upsert(b"k", b"v1")
        assert small_tree.update(b"k", b"v2")
        assert small_tree.get(b"k") == b"v2"

    def test_contains(self, small_tree):
        small_tree.upsert(b"k", b"v")
        assert small_tree.contains(b"k")
        assert not small_tree.contains(b"j")

    def test_empty_value_roundtrips(self, small_tree):
        small_tree.upsert(b"k", b"")
        result = small_tree.get_with_stats(b"k")
        assert result.found
        assert result.value == b""


class TestValidation:
    def test_rejects_non_bytes_key(self, small_tree):
        with pytest.raises(TypeError):
            small_tree.upsert("str", b"v")
        with pytest.raises(TypeError):
            small_tree.get_with_stats("str")  # type: ignore[arg-type]

    def test_rejects_empty_key(self, small_tree):
        with pytest.raises(ValueError):
            small_tree.upsert(b"", b"v")

    def test_rejects_non_bytes_value(self, small_tree):
        with pytest.raises(TypeError):
            small_tree.upsert(b"k", 42)


class TestStructure:
    def test_splits_grow_depth(self, small_tree):
        load_keys(small_tree, 3000, value_bytes=100)
        assert small_tree.depth() >= 3
        assert small_tree.counters.get("bwtree.leaf_splits") > 0
        assert small_tree.counters.get("bwtree.root_splits") >= 1

    def test_all_keys_readable_after_splits(self, small_tree):
        expected = load_keys(small_tree, 3000, value_bytes=100)
        for key, value in expected.items():
            assert small_tree.get(key) == value

    def test_leaf_sizes_bounded(self, small_tree):
        load_keys(small_tree, 3000, value_bytes=100)
        for entry in small_tree.mapping_table.entries():
            if entry.state is not None and entry.state.base_present:
                assert (entry.state.base_size_bytes
                        <= small_tree.config.max_page_bytes)

    def test_average_leaf_bytes_below_max(self, small_tree):
        load_keys(small_tree, 3000, value_bytes=100)
        ps = small_tree.average_leaf_bytes()
        assert 0 < ps <= small_tree.config.max_page_bytes

    def test_consolidation_bounds_chains(self, small_tree):
        for __ in range(50):
            small_tree.upsert(b"hot", b"x" * 10)
        entry = small_tree._descend(b"hot")
        assert (entry.state.chain_length
                < small_tree.config.consolidate_threshold + 2)

    def test_mass_delete_collapses_pages(self, small_tree):
        expected = load_keys(small_tree, 2000, value_bytes=100)
        pages_before = len(small_tree.mapping_table)
        for key in expected:
            small_tree.delete(key)
        # Force consolidation of the tombstones via reads.
        for key in list(expected)[::10]:
            small_tree.get(key)
        assert len(small_tree.mapping_table) < pages_before
        assert small_tree.counters.get("bwtree.leaf_merges") > 0

    def test_count_records(self, small_tree):
        expected = load_keys(small_tree, 500)
        assert small_tree.count_records() == len(expected)


class TestScans:
    def test_scan_full_range_sorted(self, small_tree):
        expected = load_keys(small_tree, 1200, value_bytes=60)
        got = list(small_tree.scan(b"\x00"))
        assert got == [(k, expected[k]) for k in sorted(expected)]

    def test_scan_subrange(self, small_tree):
        expected = load_keys(small_tree, 800)
        lo, hi = b"key00000100", b"key00000300"
        got = [k for k, __ in small_tree.scan(lo, hi)]
        assert got == [k for k in sorted(expected) if lo <= k < hi]

    def test_scan_limit(self, small_tree):
        load_keys(small_tree, 400)
        assert len(list(small_tree.scan(b"key", limit=13))) == 13

    def test_scan_sees_unconsolidated_deltas(self, small_tree):
        load_keys(small_tree, 300)
        small_tree.upsert(b"key00000150x", b"new")
        small_tree.delete(b"key00000151")
        keys = dict(small_tree.scan(b"key00000150", b"key00000153"))
        assert keys[b"key00000150x"] == b"new"
        assert b"key00000151" not in keys


class TestCachingBehaviour:
    def test_capped_cache_respects_budget(self, capped_tree):
        load_keys(capped_tree, 2000, value_bytes=100)
        assert (capped_tree.cache.resident_bytes
                <= capped_tree.config.cache_capacity_bytes)

    def test_reads_of_evicted_pages_cost_io(self, capped_tree):
        expected = load_keys(capped_tree, 2000, value_bytes=100)
        capped_tree.checkpoint()
        capped_tree.store.flush()
        for key, value in expected.items():
            assert capped_tree.get(key) == value
        assert capped_tree.counters.get("bwtree.ss_ops") > 0
        assert capped_tree.counters.get("bwtree.ios") > 0

    def test_blind_upsert_never_does_io(self, capped_tree):
        load_keys(capped_tree, 2000, value_bytes=100)
        capped_tree.checkpoint()
        before = capped_tree.counters.get("bwtree.ios")
        for index in range(500):
            result = capped_tree.upsert(b"key%08d" % index, b"fresh")
            assert result.ios == 0
        assert capped_tree.counters.get("bwtree.ios") == before

    def test_blind_upserts_are_readable(self, capped_tree):
        load_keys(capped_tree, 2000, value_bytes=100)
        capped_tree.checkpoint()
        for index in range(0, 2000, 7):
            capped_tree.upsert(b"key%08d" % index, b"fresh%d" % index)
        for index in range(0, 2000, 7):
            assert capped_tree.get(b"key%08d" % index) == b"fresh%d" % index

    def test_warm_all_brings_everything_resident(self, capped_tree):
        load_keys(capped_tree, 1000, value_bytes=100)
        capped_tree.checkpoint()
        capped_tree.cache.capacity_bytes = None
        ios = capped_tree.warm_all()
        assert ios >= 0
        for entry in capped_tree.mapping_table.entries():
            assert entry.fully_resident

    def test_mm_plus_ss_equals_ops(self, capped_tree):
        load_keys(capped_tree, 1500, value_bytes=100)
        counters = capped_tree.counters
        assert (counters.get("bwtree.mm_ops") + counters.get("bwtree.ss_ops")
                == counters.get("bwtree.ops"))


class TestRecordCacheMode:
    def test_record_cache_hits_counted(self):
        machine = Machine.paper_default()
        tree = BwTree(machine, BwTreeConfig(
            cache_capacity_bytes=32 * 1024,
            segment_bytes=1 << 16,
            record_cache=True,
        ))
        expected = load_keys(tree, 1500, value_bytes=100)
        tree.checkpoint()
        # Touch updated keys: their deltas may be retained after eviction.
        for index in range(0, 1500, 3):
            tree.upsert(b"key%08d" % index, b"upd")
        hits_possible = 0
        for index in range(0, 1500, 3):
            result = tree.get_with_stats(b"key%08d" % index)
            assert result.value == b"upd"
            if result.record_cache_hit:
                hits_possible += 1
        assert tree.counters.get("bwtree.record_cache_hits") \
            == pytest.approx(hits_possible)
        del expected


class TestDurability:
    def test_checkpoint_then_cold_read_everything(self, small_tree):
        expected = load_keys(small_tree, 1000, value_bytes=80)
        small_tree.checkpoint()
        # Drop the whole cache.
        small_tree.cache.capacity_bytes = 1
        small_tree.cache.ensure_capacity()
        small_tree.cache.capacity_bytes = None
        for key, value in expected.items():
            assert small_tree.get(key) == value

    def test_gc_preserves_data(self, capped_tree):
        expected = load_keys(capped_tree, 1500, value_bytes=100)
        for index in range(0, 1500, 2):
            capped_tree.upsert(b"key%08d" % index, b"v2")
            expected[b"key%08d" % index] = b"v2"
        # Reads force consolidation / rewrites, creating garbage.
        for index in range(0, 1500, 5):
            capped_tree.get(b"key%08d" % index)
        capped_tree.checkpoint()
        capped_tree.gc.run_until_utilization(0.95)
        for key, value in expected.items():
            assert capped_tree.get(key) == value


class TestMachineCoupling:
    def test_every_op_charges_cpu(self, small_tree):
        machine = small_tree.machine
        busy_before = machine.cpu.busy_us
        small_tree.upsert(b"k", b"v")
        small_tree.get(b"k")
        assert machine.cpu.busy_us > busy_before
        assert machine.operations == 2

    def test_dram_accounting_matches_components(self, small_tree):
        load_keys(small_tree, 500)
        dram = small_tree.machine.dram
        assert dram.bytes_for("page_cache") > 0
        assert dram.bytes_for("mapping_table") > 0
        assert small_tree.dram_footprint_bytes() == (
            dram.bytes_for("page_cache")
            + dram.bytes_for("bwtree_index")
            + dram.bytes_for("mapping_table")
        )


class TestLatency:
    def test_cached_read_latency_is_execution_only(self, small_tree):
        small_tree.upsert(b"k", b"v")
        result = small_tree.get_with_stats(b"k")
        assert 0.0 < result.latency_us < 10.0

    def test_ss_read_latency_includes_device_time(self, capped_tree):
        load_keys(capped_tree, 2000, value_bytes=100)
        capped_tree.checkpoint()
        capped_tree.store.flush()
        read_latency = capped_tree.machine.ssd.spec.read_latency_us
        saw_ss = False
        for index in range(0, 2000, 11):
            result = capped_tree.get_with_stats(b"key%08d" % index)
            if result.is_ss:
                saw_ss = True
                assert result.latency_us > read_latency
        assert saw_ss

    def test_latency_histogram_populated(self, small_tree):
        load_keys(small_tree, 200)
        hist = small_tree.machine.op_latencies
        assert hist.count >= 200
        # The paper's Section 8.1 point: MM latencies are tens of us at
        # most; p50 here is ~1 us.
        assert hist.percentile(50) < 10.0


class TestUnderflowMerging:
    def test_shrunken_pages_merge_into_siblings(self):
        machine = Machine.paper_default(cores=1)
        tree = BwTree(machine, BwTreeConfig(
            segment_bytes=1 << 16, min_page_bytes=512,
        ))
        expected = load_keys(tree, 3000, value_bytes=100)
        pages_full = len(tree.mapping_table)
        # Delete 90% of records, then read to force consolidations.
        keys = sorted(expected)
        for index, key in enumerate(keys):
            if index % 10 != 0:
                tree.delete(key)
                del expected[key]
        for key in keys[::7]:
            tree.get(key)
        assert len(tree.mapping_table) < pages_full
        assert tree.counters.get("bwtree.underflow_merges") > 0
        for key, value in expected.items():
            assert tree.get(key) == value
        assert list(tree.scan(b"\x00")) == sorted(expected.items())

    def test_merging_disabled_with_zero_min(self):
        machine = Machine.paper_default(cores=1)
        tree = BwTree(machine, BwTreeConfig(
            segment_bytes=1 << 16, min_page_bytes=0,
        ))
        expected = load_keys(tree, 1500, value_bytes=100)
        for index, key in enumerate(sorted(expected)):
            if index % 10 != 0:
                tree.delete(key)
        for key in sorted(expected)[::7]:
            tree.get(key)
        assert tree.counters.get("bwtree.underflow_merges") == 0

    def test_merge_survives_checkpoint_recovery(self):
        machine = Machine.paper_default(cores=1)
        tree = BwTree(machine, BwTreeConfig(
            segment_bytes=1 << 14, min_page_bytes=512,
        ))
        expected = load_keys(tree, 2000, value_bytes=100)
        for index, key in enumerate(sorted(expected)):
            if index % 5 != 0:
                tree.delete(key)
                del expected[key]
        for key in sorted(expected):
            tree.get(key)
        tree.checkpoint()
        recovered = tree.simulate_crash_and_recover()
        for key, value in expected.items():
            assert recovered.get(key) == value
        assert recovered.count_records() == len(expected)


class TestBulkLoad:
    def items(self, count, value_bytes=100):
        return [(b"key%08d" % i, b"v" * value_bytes) for i in range(count)]

    def test_loads_and_reads_back(self):
        machine = Machine.paper_default(cores=1)
        tree = BwTree(machine, BwTreeConfig(segment_bytes=1 << 16))
        loaded = tree.bulk_load(self.items(2000))
        assert loaded == 2000
        assert tree.get(b"key%08d" % 0) == b"v" * 100
        assert tree.get(b"key%08d" % 1999) == b"v" * 100
        assert tree.count_records() == 2000
        assert [k for k, __ in tree.scan(b"key", limit=3)] == [
            b"key%08d" % 0, b"key%08d" % 1, b"key%08d" % 2,
        ]

    def test_fill_fraction_controls_page_size(self):
        sizes = {}
        for fill in (0.5, 0.69, 1.0):
            machine = Machine.paper_default(cores=1)
            tree = BwTree(machine, BwTreeConfig(segment_bytes=1 << 16))
            tree.bulk_load(self.items(2000), fill_fraction=fill)
            sizes[fill] = tree.average_leaf_bytes()
        assert sizes[0.5] < sizes[0.69] < sizes[1.0]
        # The paper's Ps: ~69% of 4 KB.
        assert 2300 < sizes[0.69] < 3000

    def test_requires_empty_tree(self):
        machine = Machine.paper_default(cores=1)
        tree = BwTree(machine, BwTreeConfig())
        tree.upsert(b"k", b"v")
        with pytest.raises(ValueError):
            tree.bulk_load(self.items(10))

    def test_requires_sorted_unique_input(self):
        machine = Machine.paper_default(cores=1)
        tree = BwTree(machine, BwTreeConfig())
        with pytest.raises(ValueError):
            tree.bulk_load([(b"b", b"1"), (b"a", b"2")])
        tree2 = BwTree(Machine.paper_default(cores=1), BwTreeConfig())
        with pytest.raises(ValueError):
            tree2.bulk_load([(b"a", b"1"), (b"a", b"2")])

    def test_fill_fraction_validation(self):
        machine = Machine.paper_default(cores=1)
        tree = BwTree(machine, BwTreeConfig())
        with pytest.raises(ValueError):
            tree.bulk_load(self.items(10), fill_fraction=0.0)

    def test_empty_input_keeps_empty_tree(self):
        machine = Machine.paper_default(cores=1)
        tree = BwTree(machine, BwTreeConfig())
        assert tree.bulk_load([]) == 0
        assert tree.get(b"anything") is None
        tree.upsert(b"k", b"v")
        assert tree.get(b"k") == b"v"

    def test_bulk_loaded_tree_supports_full_lifecycle(self):
        machine = Machine.paper_default(cores=1)
        tree = BwTree(machine, BwTreeConfig(
            segment_bytes=1 << 14, cache_capacity_bytes=32 * 1024,
        ))
        tree.bulk_load(self.items(1500))
        for index in range(0, 1500, 3):
            tree.upsert(b"key%08d" % index, b"updated")
        for index in range(0, 1500, 5):
            tree.delete(b"key%08d" % index)
        tree.checkpoint()
        recovered = tree.simulate_crash_and_recover()
        assert recovered.get(b"key%08d" % 3) == b"updated"
        assert recovered.get(b"key%08d" % 5) is None
        assert recovered.get(b"key%08d" % 1) == b"v" * 100
