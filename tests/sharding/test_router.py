"""Hash partitioning and scatter/gather mechanics."""

import pytest

from repro.sharding import ShardRouter, fnv1a_64


class TestHash:
    def test_fnv1a_known_vectors(self):
        # Reference values for the 64-bit FNV-1a parameters.
        assert fnv1a_64(b"") == 0xCBF29CE484222325
        assert fnv1a_64(b"a") == 0xAF63DC4C8601EC8C
        assert fnv1a_64(b"foobar") == 0x85944171F73967E8

    def test_stable_across_router_instances(self):
        keys = [b"user%010d" % index for index in range(500)]
        first, second = ShardRouter(8), ShardRouter(8)
        assert [first.shard_for(k) for k in keys] \
            == [second.shard_for(k) for k in keys]

    def test_single_shard_owns_everything(self):
        router = ShardRouter(1)
        assert all(router.shard_for(b"k%d" % i) == 0 for i in range(100))

    def test_distribution_roughly_even(self):
        router = ShardRouter(4)
        counts = [0] * 4
        for index in range(8000):
            counts[router.shard_for(b"user%010d" % index)] += 1
        for count in counts:
            assert 0.8 * 2000 < count < 1.2 * 2000

    def test_rejects_nonpositive_shard_count(self):
        with pytest.raises(ValueError):
            ShardRouter(0)


class TestScatterGather:
    def test_scatter_preserves_order_within_shard(self):
        router = ShardRouter(3)
        keys = [b"key%04d" % index for index in range(60)]
        per_shard, positions = router.scatter(keys, lambda k: k)
        assert sum(len(sub) for sub in per_shard) == 60
        for sub, posns in zip(per_shard, positions):
            assert posns == sorted(posns)
            assert [keys[p] for p in posns] == sub

    def test_gather_inverts_scatter(self):
        router = ShardRouter(4)
        items = [b"item%03d" % index for index in range(40)]
        per_shard, positions = router.scatter(items, lambda item: item)
        # Identity "work" per shard: results are the items themselves.
        assert router.gather(len(items), per_shard, positions) == items

    def test_gather_rejects_result_count_mismatch(self):
        router = ShardRouter(2)
        with pytest.raises(ValueError):
            router.gather(2, [[1], []], [[0, 1], []])

    def test_empty_batch(self):
        router = ShardRouter(4)
        per_shard, positions = router.scatter([], lambda item: item)
        assert all(not sub for sub in per_shard)
        assert router.gather(0, per_shard, positions) == []
