"""ShardedEngine semantics: equivalence with a single engine, per-shard
group commit, fleet recovery, and aggregated accounting."""

import random

import pytest

from repro.bwtree import BwTreeConfig
from repro.deuteronomy import DeuteronomyEngine, TcConfig
from repro.hardware import Machine
from repro.sharding import ShardedEngine

TREE_CONFIG = BwTreeConfig(segment_bytes=1 << 14)
TC_CONFIG = TcConfig(log_buffer_bytes=1 << 12)


def make_sharded(num_shards: int, threaded: bool = False,
                 sync: bool = False) -> ShardedEngine:
    return ShardedEngine(
        num_shards,
        cores_per_shard=1,
        tree_config=TREE_CONFIG,
        tc_config=TcConfig(log_buffer_bytes=1 << 12, sync_commit=sync),
        threaded=threaded,
    )


def make_single() -> DeuteronomyEngine:
    return DeuteronomyEngine(
        Machine.paper_default(cores=1), TREE_CONFIG, TC_CONFIG,
    )


def random_ops(count: int, key_space: int, seed: int):
    """A deterministic mixed op stream over a small keyspace."""
    rng = random.Random(seed)
    ops = []
    for index in range(count):
        key = b"user%06d" % rng.randrange(key_space)
        roll = rng.random()
        if roll < 0.45:
            ops.append(("get", key, None))
        elif roll < 0.85:
            ops.append(("put", key, b"v%d" % index))
        else:
            ops.append(("delete", key, None))
    return ops


def run_stream(engine, ops, batch_size=16):
    results = []
    for start in range(0, len(ops), batch_size):
        results.extend(engine.apply_batch(ops[start:start + batch_size]))
    return results


class TestEquivalence:
    """For any op stream, the sharded fleet must match one engine."""

    @pytest.mark.parametrize("num_shards", [1, 2, 4, 8])
    def test_batched_stream_matches_single_engine(self, num_shards):
        ops = random_ops(400, key_space=60, seed=num_shards)
        single, sharded = make_single(), make_sharded(num_shards)
        single_results = run_stream(single, ops)
        sharded_results = run_stream(sharded, ops)
        assert sharded_results == single_results
        for index in range(60):
            key = b"user%06d" % index
            assert sharded.get(key) == single.get(key)

    def test_multi_api_matches_single_engine(self):
        items = [(b"k%03d" % (i % 40), b"v%d" % i) for i in range(120)]
        keys = [key for key, __ in items]
        single, sharded = make_single(), make_sharded(4)
        single.multi_put(items)
        sharded.multi_put(items)
        assert sharded.multi_get(keys) == single.multi_get(keys)
        dropped = keys[::3]
        single.multi_delete(dropped)
        sharded.multi_delete(dropped)
        assert sharded.multi_get(keys) == single.multi_get(keys)

    def test_duplicate_keys_in_one_batch_last_wins(self):
        sharded = make_sharded(4)
        sharded.multi_put([(b"k", b"first"), (b"k", b"second"),
                           (b"other", b"x"), (b"k", b"third")])
        assert sharded.get(b"k") == b"third"

    def test_single_key_ops_route_consistently(self):
        sharded = make_sharded(4)
        sharded.put(b"k", b"v")
        assert sharded.get(b"k") == b"v"
        sharded.delete(b"k")
        assert sharded.get(b"k") is None

    def test_results_gather_in_input_order(self):
        sharded = make_sharded(8)
        items = [(b"key%04d" % index, b"v%d" % index)
                 for index in range(64)]
        sharded.multi_put(items)
        values = sharded.multi_get([key for key, __ in items])
        assert values == [value for __, value in items]


class TestShardIndependence:
    def test_ops_land_on_owning_shard_only(self):
        sharded = make_sharded(4)
        items = [(b"user%06d" % index, b"v") for index in range(200)]
        sharded.multi_put(items)
        for shard_id, shard in enumerate(sharded.shards):
            for key, __ in items:
                owner = sharded.shard_for(key)
                found = shard.get(key) is not None
                assert found == (owner == shard_id)

    def test_each_involved_shard_group_commits_once(self):
        sharded = make_sharded(4, sync=True)
        items = [(b"user%06d" % index, b"v" * 10) for index in range(64)]
        sharded.multi_put(items)
        for shard in sharded.shards:
            commits = shard.tc.counters.get("tc.commits")
            if commits:
                # One grouped append + one flush for the whole sub-batch.
                assert shard.tc.log.batch_appends == 1
                assert shard.tc.log.flushes == 1

    def test_redo_records_stay_on_owning_shards_log(self):
        sharded = make_sharded(4, sync=True)
        items = [(b"user%06d" % index, b"v") for index in range(80)]
        sharded.multi_put(items)
        for shard_id, shard in enumerate(sharded.shards):
            for record in shard.tc.log.durable_records:
                assert sharded.shard_for(record.key) == shard_id


class TestThreadedDispatch:
    def test_threaded_matches_sequential(self):
        ops = random_ops(300, key_space=50, seed=99)
        sequential = make_sharded(4, threaded=False)
        threaded = make_sharded(4, threaded=True)
        assert run_stream(sequential, ops) == run_stream(threaded, ops)
        seq_stats = sequential.stats()
        thr_stats = threaded.stats()
        # Simulated accounting is thread-independent: identical costs.
        assert thr_stats["fleet"]["core_seconds"] \
            == pytest.approx(seq_stats["fleet"]["core_seconds"])
        assert thr_stats["fleet"]["operations"] \
            == seq_stats["fleet"]["operations"]


class TestFleetRecovery:
    def test_recover_matches_single_engine_recovery(self):
        ops = random_ops(300, key_space=40, seed=7)
        single, sharded = make_single(), make_sharded(4)
        run_stream(single, ops)
        run_stream(sharded, ops)
        single.checkpoint()
        sharded.checkpoint()
        single_recovered = DeuteronomyEngine.recover(single)
        sharded_recovered = ShardedEngine.recover(sharded)
        for index in range(40):
            key = b"user%06d" % index
            assert sharded_recovered.get(key) == single_recovered.get(key)

    def test_post_checkpoint_writes_lost_consistently(self):
        sharded = make_sharded(4)
        sharded.multi_put([(b"user%06d" % i, b"kept") for i in range(40)])
        sharded.checkpoint()
        sharded.multi_put([(b"user%06d" % i, b"lost") for i in range(40)])
        recovered = ShardedEngine.recover(sharded)
        for index in range(40):
            assert recovered.get(b"user%06d" % index) == b"kept"

    def test_recovered_fleet_routes_identically(self):
        sharded = make_sharded(8)
        keys = [b"user%06d" % index for index in range(100)]
        sharded.multi_put([(key, b"v") for key in keys])
        sharded.checkpoint()
        recovered = ShardedEngine.recover(sharded)
        for key in keys:
            assert recovered.shard_for(key) == sharded.shard_for(key)
            assert recovered.get(key) == b"v"

    def test_double_fleet_recovery_is_idempotent(self):
        sharded = make_sharded(2)
        sharded.put(b"k", b"v")
        sharded.checkpoint()
        first = ShardedEngine.recover(sharded)
        first.put(b"new", b"resident")
        again = ShardedEngine.recover(sharded)
        assert again is first
        assert first.get(b"new") == b"resident"

    def test_recovered_fleet_accepts_new_batches(self):
        sharded = make_sharded(4)
        sharded.multi_put([(b"user%06d" % i, b"old") for i in range(30)])
        sharded.checkpoint()
        recovered = ShardedEngine.recover(sharded)
        recovered.multi_put([(b"user%06d" % i, b"new") for i in range(30)])
        assert all(recovered.get(b"user%06d" % i) == b"new"
                   for i in range(30))


class TestAggregatedStats:
    def test_fleet_sums_additive_counters(self):
        sharded = make_sharded(4)
        ops = random_ops(200, key_space=30, seed=3)
        run_stream(sharded, ops)
        stats = sharded.stats()
        fleet, per_shard = stats["fleet"], stats["per_shard"]
        assert len(per_shard) == 4
        for key in ("operations", "core_seconds", "dram_bytes",
                    "commits", "reads", "read_cache_hits",
                    "read_cache_misses", "ssd_ios"):
            assert fleet[key] == pytest.approx(
                sum(shard[key] for shard in per_shard))

    def test_fleet_elapsed_is_slowest_shard(self):
        sharded = make_sharded(4)
        run_stream(sharded, random_ops(200, key_space=30, seed=4))
        stats = sharded.stats()
        assert stats["fleet"]["elapsed_seconds"] == pytest.approx(
            max(s["elapsed_seconds"] for s in stats["per_shard"]))

    def test_rates_rederived_from_sums(self):
        sharded = make_sharded(2)
        keys = [b"user%06d" % index for index in range(20)]
        sharded.multi_put([(key, b"v") for key in keys])
        for __ in range(3):
            sharded.multi_get(keys)
        stats = sharded.stats()
        fleet = stats["fleet"]
        probes = fleet["read_cache_hits"] + fleet["read_cache_misses"]
        if probes:
            assert fleet["read_cache_hit_rate"] == pytest.approx(
                fleet["read_cache_hits"] / probes)
        assert 0.0 <= fleet["tc_hit_rate"] <= 1.0
        assert stats["routed_ops"] > 0
        assert stats["routed_batches"] > 0

    def test_every_shard_read_cache_earns_hits(self):
        """The router must not bypass any shard's read cache.

        Bulk-loaded keys are in the DC only (no versions), so a first
        read populates each shard's read cache and a re-read must hit it
        — on *every* shard, not just in the fleet aggregate (BENCH v4
        showed a fleet hit rate frozen across shard counts, which a
        single hot shard could fake).
        """
        sharded = make_sharded(4)
        keys = [b"user%06d" % index for index in range(64)]
        sharded.bulk_load([(key, b"v") for key in keys])
        for __ in range(2):
            sharded.multi_get(keys)
        stats = sharded.stats()
        for index, shard in enumerate(stats["per_shard"]):
            assert shard["read_cache_hits"] > 0, f"shard {index} never hit"
            assert shard["read_cache_hit_rate"] > 0.0

    def test_router_work_charged_to_shard_machines(self):
        sharded = make_sharded(2)
        sharded.multi_put([(b"user%06d" % i, b"v") for i in range(50)])
        total_router_us = sum(
            shard.machine.cpu.counters.get("cpu_us.router")
            for shard in sharded.shards
        )
        assert total_router_us > 0


class TestConstruction:
    def test_rejects_zero_shards(self):
        with pytest.raises(ValueError):
            ShardedEngine(0)

    def test_bulk_load_partitions_and_counts(self):
        sharded = make_sharded(4)
        items = [(b"user%06d" % index, b"v%d" % index)
                 for index in range(200)]
        assert sharded.bulk_load(items) == 200
        for key, value in items:
            assert sharded.get(key) == value

    def test_shard_mismatch_rejected(self):
        with pytest.raises(ValueError):
            ShardedEngine(3, _shards=[make_single()])
