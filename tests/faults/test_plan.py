"""Fault plans and the injector: counting, firing, determinism."""

from __future__ import annotations

import pytest

from repro.faults import (
    FAULT_SITES,
    CrashError,
    FaultInjector,
    FaultKind,
    FaultPlan,
    FaultRule,
    IoError,
    describe_sites,
)

SITE = "log_store.flush"


class TestRegistry:
    def test_known_sites_are_registered(self):
        for name in (
            "log_store.append", "log_store.flush",
            "recovery_log.flush", "recovery_log.flush.after_write",
            "checkpoint.write.after_append", "checkpoint.write.after_flush",
            "gc.clean_segment", "gc.drop_segment",
            "sharded.apply_batch.boundary",
        ):
            assert name in FAULT_SITES

    def test_describe_sites_covers_registry(self):
        described = dict(describe_sites())
        assert set(described) == set(FAULT_SITES)
        assert all(description for description in described.values())

    def test_transient_sites_are_on_retry_wrapped_paths(self):
        transient = {name for name, site in FAULT_SITES.items()
                     if site.transient_ok}
        assert transient == {"log_store.flush", "recovery_log.flush"}


class TestRuleValidation:
    def test_unknown_site_rejected(self):
        with pytest.raises(ValueError):
            FaultRule("no.such.site", 1, FaultKind.CRASH)

    def test_hit_index_is_one_based(self):
        with pytest.raises(ValueError):
            FaultRule(SITE, 0, FaultKind.CRASH)

    def test_count_must_be_positive(self):
        with pytest.raises(ValueError):
            FaultRule(SITE, 1, FaultKind.IO_ERROR, count=0)

    def test_noise_probability_bounds(self):
        with pytest.raises(ValueError):
            FaultPlan(noise_seed=0, noise_probability=1.5)

    def test_noise_sites_validated(self):
        with pytest.raises(ValueError):
            FaultPlan.transient_noise(0, 0.1, sites=["bogus"])


class TestInjector:
    def test_counts_hits_per_site(self):
        injector = FaultInjector()
        for __ in range(3):
            injector.hit(SITE)
        injector.hit("gc.clean_segment")
        assert injector.hits(SITE) == 3
        assert injector.hits("gc.clean_segment") == 1
        assert injector.total_hits == 4

    def test_unregistered_site_is_an_error(self):
        with pytest.raises(ValueError):
            FaultInjector().hit("typo.site")

    def test_crash_fires_at_exact_hit(self):
        injector = FaultInjector(FaultPlan.crash_at(SITE, 3))
        injector.hit(SITE)
        injector.hit(SITE)
        with pytest.raises(CrashError) as excinfo:
            injector.hit(SITE)
        assert excinfo.value.site == SITE
        assert excinfo.value.hit == 3

    def test_crash_fires_at_most_once(self):
        # Recovery re-enters instrumented paths; a second crash mid-rebuild
        # would make every matrix case unrecoverable by construction.
        injector = FaultInjector(FaultPlan(rules=(
            FaultRule(SITE, 1, FaultKind.CRASH, count=5),
        )))
        with pytest.raises(CrashError):
            injector.hit(SITE)
        for __ in range(5):
            injector.hit(SITE)   # does not raise again

    def test_io_error_fires_for_count_consecutive_hits(self):
        injector = FaultInjector(FaultPlan.io_error_at(SITE, 2, failures=2))
        injector.hit(SITE)
        with pytest.raises(IoError):
            injector.hit(SITE)
        with pytest.raises(IoError):
            injector.hit(SITE)
        injector.hit(SITE)   # device healthy again

    def test_disarm_suspends_counting_and_firing(self):
        injector = FaultInjector(FaultPlan.crash_at(SITE, 1))
        injector.disarm()
        injector.hit(SITE)           # neither counted nor fired
        assert injector.hits(SITE) == 0
        injector.arm()
        with pytest.raises(CrashError):
            injector.hit(SITE)

    def test_noise_is_deterministic_per_seed(self):
        def fire_pattern(seed: int) -> list:
            injector = FaultInjector(FaultPlan.transient_noise(seed, 0.3))
            pattern = []
            for __ in range(40):
                try:
                    injector.hit(SITE)
                    pattern.append(False)
                except IoError:
                    pattern.append(True)
            return pattern

        assert fire_pattern(7) == fire_pattern(7)
        assert fire_pattern(7) != fire_pattern(8)
        assert any(fire_pattern(7))

    def test_noise_only_hits_transient_sites_by_default(self):
        injector = FaultInjector(FaultPlan.transient_noise(0, 1.0))
        injector.hit("log_store.append")        # not transient_ok: no raise
        with pytest.raises(IoError):
            injector.hit(SITE)
