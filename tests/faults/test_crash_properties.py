"""Property tests: random traces crashed at random sites still recover.

The crash matrix enumerates one seeded trace exhaustively; these
properties sample the broader space — any (seed, site, hit) triple must
either never reach the crash point or recover onto the durable prefix,
recovery must be idempotent, and a recovered fleet's accounting must
stay counter-additive.
"""

from __future__ import annotations

import hypothesis.strategies as st
from hypothesis import HealthCheck, given, settings

from repro.deuteronomy import DeuteronomyEngine
from repro.faults import FAULT_SITES, CrashError, FaultInjector, FaultPlan
from repro.faults.matrix import (
    SCENARIOS as MATRIX_SCENARIOS,
    MatrixConfig,
    _build,
    _drive,
    _durable_view,
    _setup,
    _shard_engines,
    build_trace,
    run_case,
)
from repro.sharding.engine import _ADDITIVE_STAT_KEYS, ShardedEngine

SITES = st.sampled_from(sorted(FAULT_SITES))
SEEDS = st.integers(min_value=0, max_value=2**16)
HITS = st.integers(min_value=1, max_value=5)
SCENARIOS = st.sampled_from(sorted(MATRIX_SCENARIOS))


def tiny_config(seed: int) -> MatrixConfig:
    return MatrixConfig(
        seed=seed, ops=120, records=48, checkpoint_every=30,
        gc_every=60, batch_size=12, max_hits_per_site=1,
    )


def crash_somewhere(scenario, config, baseline, ops, site, hit):
    """Drive the trace under a crash plan; returns the crashed engine or
    None if (site, hit) was never reached."""
    injector = FaultInjector(FaultPlan.crash_at(site, hit))
    injector.disarm()
    engine = _build(scenario, config, injector)
    _setup(scenario, engine, baseline)
    injector.arm()
    try:
        _drive(scenario, engine, ops, config)
    except CrashError:
        injector.disarm()
        return engine
    return None


@settings(max_examples=40, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
@given(seed=SEEDS, site=SITES, hit=HITS, scenario=SCENARIOS)
def test_any_reachable_crash_recovers_to_durable_prefix(
        seed, site, hit, scenario):
    config = tiny_config(seed)
    baseline, ops = build_trace(config)
    case = run_case(scenario, config, baseline, ops, site, hit)
    if not case.crashed:
        return   # (site, hit) not reachable on this trace: vacuous
    assert case.recovered, case.violations
    assert case.violations == [], case.violations


@settings(max_examples=25, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
@given(seed=SEEDS, site=SITES, hit=HITS)
def test_recover_twice_is_recover_once(seed, site, hit):
    config = tiny_config(seed)
    baseline, ops = build_trace(config)
    crashed = crash_somewhere("engine", config, baseline, ops, site, hit)
    if crashed is None:
        return
    expected = _durable_view([crashed], baseline)
    first = DeuteronomyEngine.recover(crashed)
    second = DeuteronomyEngine.recover(crashed)
    assert second is first
    for key in sorted(set(baseline) | set(expected)):
        assert first.get(key) == expected.get(key)


@settings(max_examples=15, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
@given(seed=SEEDS, site=SITES, hit=HITS)
def test_recovered_fleet_stats_stay_additive(seed, site, hit):
    config = tiny_config(seed)
    baseline, ops = build_trace(config)
    crashed = crash_somewhere("sharded", config, baseline, ops, site, hit)
    if crashed is None:
        return
    recovered = ShardedEngine.recover(crashed)
    expected = _durable_view(_shard_engines("sharded", crashed), baseline)
    for key in sorted(baseline):
        assert recovered.get(key) == expected.get(key)
    stats = recovered.stats()
    per_shard = stats["per_shard"]
    for stat_key in _ADDITIVE_STAT_KEYS:
        assert stats["fleet"][stat_key] == sum(
            shard[stat_key] for shard in per_shard)
