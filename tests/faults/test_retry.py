"""Retry/backoff wrapper: accounting honesty and exhaustion behavior."""

from __future__ import annotations

import pytest

from repro.faults import (
    FaultInjector,
    FaultPlan,
    IoError,
    RetryPolicy,
    RetryStats,
    run_with_retries,
)
from repro.hardware import Machine

SITE = "log_store.flush"


def make_machine() -> Machine:
    return Machine.paper_default(cores=1)


def failing_attempt(machine: Machine, failures: int, nbytes: int = 4096):
    """An attempt closure that charges like the SSD flush path and fails
    ``failures`` times before succeeding."""
    plan = (FaultPlan.io_error_at(SITE, 1, failures=failures)
            if failures else FaultPlan())
    injector = FaultInjector(plan)

    def attempt() -> str:
        machine.io_path.charge_round_trip(nbytes)
        injector.hit(SITE)
        machine.ssd.write(nbytes)
        return "ok"

    return attempt


class TestRunWithRetries:
    def test_success_first_try_charges_once(self):
        machine = make_machine()
        stats = RetryStats()
        result = run_with_retries(
            machine, failing_attempt(machine, failures=0), stats=stats)
        assert result == "ok"
        assert stats == RetryStats(attempts=1, retries=0, exhausted=0)
        assert machine.ssd.counters.get("ssd.writes") == 1

    def test_each_retry_repays_the_io_path(self):
        clean = make_machine()
        run_with_retries(clean, failing_attempt(clean, failures=0))
        flaky = make_machine()
        stats = RetryStats()
        run_with_retries(
            flaky, failing_attempt(flaky, failures=2), stats=stats)
        assert stats.retries == 2
        # Three submits went down the I/O path; only the last reached
        # the device.  The failed attempts still cost CPU.
        assert flaky.cpu.busy_seconds > 3 * clean.cpu.busy_seconds
        assert flaky.ssd.counters.get("ssd.writes") == 1

    def test_backoff_charges_grow_with_attempt(self):
        machine = make_machine()
        policy = RetryPolicy(max_attempts=4, backoff_base=2,
                             backoff_multiplier=3)
        charged = []
        before = machine.cpu.busy_seconds

        def attempt() -> None:
            nonlocal before
            charged.append(machine.cpu.busy_seconds - before)
            before = machine.cpu.busy_seconds
            raise IoError(SITE, len(charged))

        with pytest.raises(IoError):
            run_with_retries(machine, attempt, policy=policy)
        # First attempt has no backoff; then 2, 6, 18 context switches.
        assert charged[0] == 0
        assert charged[1] > 0
        assert charged[2] == pytest.approx(3 * charged[1])
        assert charged[3] == pytest.approx(9 * charged[1])

    def test_exhaustion_reraises_last_error_and_counts(self):
        machine = make_machine()
        stats = RetryStats()
        policy = RetryPolicy(max_attempts=3)
        with pytest.raises(IoError):
            run_with_retries(
                machine, failing_attempt(machine, failures=99),
                policy=policy, stats=stats)
        assert stats == RetryStats(attempts=3, retries=2, exhausted=1)

    def test_non_transient_errors_pass_through(self):
        machine = make_machine()

        def attempt() -> None:
            raise RuntimeError("not transient")

        with pytest.raises(RuntimeError, match="not transient"):
            run_with_retries(machine, attempt)

    def test_policy_validation(self):
        with pytest.raises(ValueError):
            RetryPolicy(max_attempts=0)
        with pytest.raises(ValueError):
            RetryPolicy(backoff_multiplier=0)


class TestStoreRetryIntegration:
    def test_transient_flush_errors_are_absorbed_and_charged(self):
        from repro.bwtree import BwTree, BwTreeConfig

        machine = make_machine()
        machine.faults = FaultInjector(
            FaultPlan.io_error_at(SITE, 1, failures=2))
        tree = BwTree(machine, BwTreeConfig(segment_bytes=1 << 13))
        for index in range(200):
            tree.upsert(b"key%04d" % index, b"v" * 40)
        tree.checkpoint()
        assert tree.store.retry_stats.retries == 2
        assert tree.store.retry_stats.exhausted == 0
        for index in range(200):
            assert tree.get(b"key%04d" % index) == b"v" * 40

    def test_transient_log_flush_errors_keep_commits_durable(self):
        from repro.bwtree import BwTreeConfig
        from repro.deuteronomy import DeuteronomyEngine, TcConfig

        machine = make_machine()
        machine.faults = FaultInjector(
            FaultPlan.io_error_at("recovery_log.flush", 1, failures=1))
        engine = DeuteronomyEngine(
            machine, BwTreeConfig(segment_bytes=1 << 13),
            TcConfig(log_buffer_bytes=1 << 12))
        engine.put(b"base", b"0")
        engine.checkpoint()     # log flush inside hits the faulty site
        for index in range(30):
            engine.put(b"key%02d" % index, b"v%d" % index)
        engine.tc.log.flush()
        assert engine.tc.log.retry_stats.retries == 1
        recovered = DeuteronomyEngine.recover(engine)
        assert recovered.get(b"base") == b"0"
        for index in range(30):
            assert recovered.get(b"key%02d" % index) == b"v%d" % index
