"""Commit-future semantics under crashes in the async ack window.

The pipeline splits commit durability into submit -> ack -> resolve,
which opens two crash windows the synchronous path never had:

* crash **before the ack** (``commit_pipeline.flush.pre_ack``) — the
  buffer was submitted but never acknowledged: its futures stay
  unresolved and its records must be *absent* after recovery;
* crash **after the ack** (``commit_pipeline.flush.post_ack``) — the
  records are durable even though their futures never resolved: they
  must *survive* recovery.

A resolved future is a durability promise: its record must survive any
later crash.  The hypothesis property closes the loop: random epoch
boundaries (window/byte threshold) x every new fault site x random hit
still recover exactly onto the durable prefix.
"""

from __future__ import annotations

from typing import List, Optional, Tuple

import hypothesis.strategies as st
from hypothesis import HealthCheck, given, settings

from repro.bwtree import BwTreeConfig
from repro.deuteronomy import DeuteronomyEngine
from repro.deuteronomy.commit_pipeline import (
    SITE_EPOCH_OPEN,
    SITE_POST_ACK,
    SITE_PRE_ACK,
    CommitFuture,
)
from repro.deuteronomy.tc import TcConfig
from repro.faults import CrashError, FaultInjector, FaultPlan
from repro.faults.matrix import MatrixConfig, _durable_view, build_trace
from repro.hardware import Machine

TREE = BwTreeConfig(segment_bytes=1 << 13, cache_capacity_bytes=20 << 10)

#: One commit per distinct key; small buffers/epochs so acks happen
#: early in the trace.
TC = TcConfig(commit_pipeline=True, log_buffer_bytes=2 << 10,
              commit_epoch_bytes=1 << 10)

Committed = Tuple[bytes, bytes, CommitFuture]


def _build_async_engine(injector: FaultInjector,
                        tc_config: TcConfig = TC) -> DeuteronomyEngine:
    machine = Machine.paper_default(cores=2)
    machine.faults = injector
    return DeuteronomyEngine(machine, tree_config=TREE,
                             tc_config=tc_config)


def _drive_distinct_puts(
        engine: DeuteronomyEngine, count: int = 400,
) -> Tuple[List[Committed], bool]:
    """Put ``count`` distinct keys, recording each commit's future.

    Returns the (key, value, future) list and whether a planned crash
    fired mid-trace.
    """
    committed: List[Committed] = []
    try:
        for index in range(count):
            key = b"fut%05d" % index
            value = b"v%05d" % index
            engine.put(key, value)
            future = engine.tc.last_commit_future
            assert future is not None
            committed.append((key, value, future))
    except CrashError:
        return committed, True
    return committed, False


def _crash_async_engine(
        site: str, hit: int,
) -> Optional[Tuple[DeuteronomyEngine, List[Committed]]]:
    injector = FaultInjector(FaultPlan.crash_at(site, hit))
    injector.disarm()
    engine = _build_async_engine(injector)
    engine.checkpoint()
    injector.arm()
    committed, crashed = _drive_distinct_puts(engine)
    injector.disarm()
    if not crashed:
        return None
    return engine, committed


class TestCrashBeforeAck:
    def test_unresolved_futures_records_absent_after_recovery(self):
        crash = _crash_async_engine(SITE_PRE_ACK, 1)
        assert crash is not None, "pre-ack site never reached"
        engine, committed = crash
        durable_lsn = engine.tc.log.durable_lsn
        unresolved = [entry for entry in committed
                      if not entry[2].resolved]
        assert unresolved, "pre-ack crash left no unresolved futures"
        recovered = DeuteronomyEngine.recover(engine)
        for key, __, future in unresolved:
            if future.lsn > durable_lsn:
                assert recovered.get(key) is None
        # The first-ever ack crashed before mark_durable: nothing at all
        # reached the durable log, so *every* put is rolled back.
        assert durable_lsn == 0
        assert all(recovered.get(key) is None for key, __, _f in committed)

    def test_pending_futures_never_resolve_after_crash(self):
        crash = _crash_async_engine(SITE_PRE_ACK, 1)
        assert crash is not None
        engine, committed = crash
        # Every recorded commit is still pending (the put that crashed
        # mid-ack may have enqueued one more future than we recorded).
        assert engine.tc.pipeline.pending_futures >= len(committed)
        assert engine.tc.pipeline.futures_resolved == 0
        assert not any(future.resolved for __, _v, future in committed)


class TestCrashAfterAck:
    def test_acked_records_survive_despite_unresolved_futures(self):
        crash = _crash_async_engine(SITE_POST_ACK, 1)
        assert crash is not None, "post-ack site never reached"
        engine, committed = crash
        durable_lsn = engine.tc.log.durable_lsn
        assert durable_lsn > 0   # mark_durable ran before the crash
        recovered = DeuteronomyEngine.recover(engine)
        durable_but_unresolved = [
            entry for entry in committed
            if entry[2].lsn <= durable_lsn and not entry[2].resolved
        ]
        assert durable_but_unresolved, \
            "post-ack crash should strand durable-but-unresolved futures"
        for key, value, __ in durable_but_unresolved:
            assert recovered.get(key) == value


class TestResolvedFutures:
    def test_resolved_future_record_survives_a_later_crash(self):
        crash = _crash_async_engine(SITE_PRE_ACK, 2)
        if crash is None:
            return   # trace never reached a second ack: vacuous
        engine, committed = crash
        resolved = [entry for entry in committed if entry[2].resolved]
        assert resolved, "second ack implies the first one resolved"
        recovered = DeuteronomyEngine.recover(engine)
        for key, value, __ in resolved:
            assert recovered.get(key) == value

    def test_drained_pipeline_resolves_everything_durably(self):
        injector = FaultInjector()
        injector.disarm()
        engine = _build_async_engine(injector)
        engine.checkpoint()   # recovery needs a live checkpoint image
        committed, crashed = _drive_distinct_puts(engine, count=100)
        assert not crashed
        engine.tc.sync_log()
        assert all(future.resolved for __, _v, future in committed)
        recovered = DeuteronomyEngine.recover(engine)
        for key, value, __ in committed:
            assert recovered.get(key) == value


# --- hypothesis: random epoch boundaries x new fault sites ---------------

ASYNC_SITES = st.sampled_from([SITE_EPOCH_OPEN, SITE_PRE_ACK,
                               SITE_POST_ACK])
SEEDS = st.integers(min_value=0, max_value=2**16)
HITS = st.integers(min_value=1, max_value=4)
INTERVALS_US = st.sampled_from([5.0, 20.0, 50.0, 200.0])
EPOCH_BYTES = st.sampled_from([256, 1024, 4096, 1 << 16])


@settings(max_examples=40, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
@given(seed=SEEDS, site=ASYNC_SITES, hit=HITS,
       interval_us=INTERVALS_US, epoch_bytes=EPOCH_BYTES)
def test_random_epoch_boundaries_recover_to_durable_prefix(
        seed, site, hit, interval_us, epoch_bytes):
    """Any (epoch shape, async crash site, hit) recovers exactly onto
    the durable prefix of the seeded trace."""
    config = MatrixConfig(
        seed=seed, ops=150, records=48, checkpoint_every=40,
        gc_every=80, max_hits_per_site=1,
    )
    baseline, ops = build_trace(config)
    tc_config = TcConfig(
        commit_pipeline=True,
        commit_interval_us=interval_us,
        commit_epoch_bytes=epoch_bytes,
        log_buffer_bytes=config.log_buffer_bytes,
    )
    injector = FaultInjector(FaultPlan.crash_at(site, hit))
    injector.disarm()
    engine = _build_async_engine(injector, tc_config)
    engine.dc.bulk_load(sorted(baseline.items()))
    engine.checkpoint()
    injector.arm()
    crashed = False
    try:
        for index, (kind, key, value) in enumerate(ops, start=1):
            if kind == "get":
                engine.get(key)
            elif kind == "put":
                engine.put(key, value)
            else:
                engine.delete(key)
            if index % config.checkpoint_every == 0:
                engine.checkpoint()
            if index % config.gc_every == 0:
                engine.collect_garbage(config.gc_target)
    except CrashError:
        crashed = True
    injector.disarm()
    if not crashed:
        return   # (site, hit) unreachable with this epoch shape: vacuous
    expected = _durable_view([engine], baseline)
    recovered = DeuteronomyEngine.recover(engine)
    for key in sorted(set(baseline) | set(expected)):
        assert recovered.get(key) == expected.get(key)
