"""Crash-matrix runner + the pinned checkpoint crash-ordering bugs."""

from __future__ import annotations

import pytest

from repro.bwtree import BwTree, BwTreeConfig
from repro.deuteronomy import DeuteronomyEngine, TcConfig
from repro.faults import CrashError, FaultInjector, FaultPlan
from repro.faults.matrix import (
    MatrixConfig,
    _sample_hits,
    build_trace,
    main,
    run_case,
    run_matrix,
)
from repro.hardware import Machine
from repro.storage import CheckpointManager


def make_engine(seed_faults: FaultInjector = None) -> DeuteronomyEngine:
    machine = Machine.paper_default(cores=1)
    machine.faults = seed_faults
    return DeuteronomyEngine(
        machine,
        BwTreeConfig(segment_bytes=1 << 13),
        TcConfig(log_buffer_bytes=1 << 12),
    )


def live_checkpoint_images(store) -> list:
    images = []
    for segment_id in store.flushed_segment_ids:
        for addr, image in store.live_images(segment_id):
            if getattr(image, "kind", None) == "checkpoint":
                images.append(addr)
    return images


class TestCheckpointCrashOrdering:
    """The two bugs this PR fixes, pinned at the exact crash windows.

    Pre-fix, ``write_checkpoint`` invalidated the previous image before
    flushing the new one (crash between → zero live checkpoints), and
    ``find_latest`` raised on finding two live images (the legitimate
    after-flush-before-invalidate window).
    """

    def test_crash_between_append_and_flush_keeps_old_checkpoint(self):
        # Disarmed hits are not counted, so the armed second checkpoint
        # is hit index 1.
        injector = FaultInjector(
            FaultPlan.crash_at("checkpoint.write.after_append", 1))
        injector.disarm()
        engine = make_engine(injector)
        for index in range(60):
            engine.put(b"key%03d" % index, b"old%d" % index)
        engine.checkpoint()               # first checkpoint, disarmed
        injector.arm()
        for index in range(60):
            engine.put(b"key%03d" % index, b"new%d" % index)
        with pytest.raises(CrashError):
            engine.checkpoint()           # second: dies pre-flush
        injector.disarm()
        # The new image never reached flash; the old one must still be
        # live (pre-fix it was already invalidated: RecoveryError here).
        recovered = DeuteronomyEngine.recover(engine)
        durable = {}
        for record in engine.tc.log.durable_records:
            durable[record.key] = record.value
        for index in range(60):
            key = b"key%03d" % index
            assert recovered.get(key) == durable.get(key, b"old%d" % index)

    def test_crash_after_flush_leaves_two_images_newest_wins(self):
        injector = FaultInjector(
            FaultPlan.crash_at("checkpoint.write.after_flush", 1))
        injector.disarm()
        engine = make_engine(injector)
        engine.put(b"k", b"v1")
        engine.checkpoint()
        injector.arm()
        engine.put(b"k", b"v2")
        engine.tc.log.flush()
        with pytest.raises(CrashError):
            engine.checkpoint()
        injector.disarm()
        store = engine.dc.store
        assert len(live_checkpoint_images(store)) == 2
        # Pre-fix find_latest raised RuntimeError on two live images.
        latest = CheckpointManager.find_latest(store)
        assert latest is not None
        survivors = live_checkpoint_images(store)
        assert survivors == [latest[0]]   # stale image invalidated
        recovered = DeuteronomyEngine.recover(engine)
        assert recovered.get(b"k") == b"v2"

    def test_stale_checkpoint_never_resurrects_old_values(self):
        # The newest image must win even when the stale one still lists
        # flash chains for since-rewritten pages.
        injector = FaultInjector(
            FaultPlan.crash_at("checkpoint.write.after_flush", 1))
        injector.disarm()
        engine = make_engine(injector)
        for index in range(40):
            engine.put(b"key%02d" % index, b"gen1")
        engine.checkpoint()
        for index in range(40):
            engine.put(b"key%02d" % index, b"gen2")
        engine.checkpoint()
        injector.arm()
        for index in range(40):
            engine.put(b"key%02d" % index, b"gen3")
        engine.tc.log.flush()
        with pytest.raises(CrashError):
            engine.checkpoint()
        injector.disarm()
        recovered = DeuteronomyEngine.recover(engine)
        for index in range(40):
            assert recovered.get(b"key%02d" % index) == b"gen3"


class TestDurableUnmarkedLogBuffer:
    """Crash after the device ack, before in-memory bookkeeping: the
    records are on flash but the buffer was never marked flushed."""

    def test_durable_unmarked_records_are_recovered(self):
        injector = FaultInjector(
            FaultPlan.crash_at("recovery_log.flush.after_write", 1))
        injector.disarm()
        engine = make_engine(injector)
        engine.put(b"base", b"0")
        engine.checkpoint()
        injector.arm()
        for index in range(25):
            engine.put(b"key%02d" % index, b"v%d" % index)
        with pytest.raises(CrashError):
            engine.tc.log.flush()
        injector.disarm()
        # The write was acked: those records count as durable.
        durable_keys = {r.key for r in engine.tc.log.durable_records}
        assert b"key00" in durable_keys
        recovered = DeuteronomyEngine.recover(engine)
        assert recovered.get(b"base") == b"0"
        for index in range(25):
            assert recovered.get(b"key%02d" % index) == b"v%d" % index

    def test_reflush_after_transient_ack_is_idempotent(self):
        # An IoError *after* a durable write cannot happen (the site is
        # past the device call), but a retried flush after a transient
        # failure must not duplicate records either.
        engine = make_engine(FaultInjector(
            FaultPlan.io_error_at("recovery_log.flush", 1)))
        for index in range(25):
            engine.put(b"key%02d" % index, b"v%d" % index)
        engine.checkpoint()               # flush retried under the fault
        engine.tc.log.flush()             # no-op: nothing new to flush
        keys = [r.key for r in engine.tc.log.durable_records]
        assert len(keys) == len(set(keys))
        recovered = DeuteronomyEngine.recover(engine)
        assert recovered.get(b"key07") == b"v7"


TINY = MatrixConfig(
    seed=0, ops=160, records=64, checkpoint_every=40, gc_every=80,
    batch_size=16, max_hits_per_site=2,
)


class TestMatrixRunner:
    def test_sample_hits_spreads_deterministically(self):
        assert _sample_hits(3, 6) == [1, 2, 3]
        assert _sample_hits(0, 6) == []
        assert _sample_hits(100, 1) == [1]
        sampled = _sample_hits(100, 6)
        assert len(sampled) == 6
        assert sampled[0] == 1 and sampled[-1] == 100
        assert sampled == _sample_hits(100, 6)

    def test_trace_is_deterministic_per_seed(self):
        assert build_trace(TINY) == build_trace(TINY)
        other = MatrixConfig(seed=1, ops=160, records=64)
        assert build_trace(other) != build_trace(TINY)

    def test_tiny_matrix_has_no_violations(self):
        report = run_matrix(TINY)
        assert report.cases, "matrix ran no cases"
        assert report.uncovered_sites == []
        assert report.total_violations == 0, report.render()

    def test_every_case_actually_crashed_and_recovered(self):
        report = run_matrix(TINY)
        for case in report.cases:
            assert case.crashed, (case.scenario, case.site, case.hit)
            assert case.recovered, (case.scenario, case.site, case.hit)

    def test_case_is_reproducible(self):
        baseline, ops = build_trace(TINY)
        first = run_case("engine", TINY, baseline, ops,
                         "checkpoint.write.after_append", 1)
        second = run_case("engine", TINY, baseline, ops,
                          "checkpoint.write.after_append", 1)
        assert first.ok and second.ok
        assert first.violations == second.violations == []

    def test_noise_pass_charges_retries(self):
        report = run_matrix(TINY, noise_probability=0.1)
        assert report.noise_retries is not None
        assert report.noise_retries >= 2   # the planned per-site errors
        assert report.ok, report.render()

    def test_oracle_flags_a_corrupted_recovery(self):
        # Sabotage: serve a stale/garbage value for one key after the
        # crash, as a GC-resurrection bug would.  The oracle must notice.
        baseline, ops = build_trace(TINY)
        victim = sorted(baseline)[0]
        from repro.faults import matrix as matrix_module

        real_recover = matrix_module._recover

        def lossy_recover(scenario, engine):
            recovered = real_recover(scenario, engine)
            recovered.dc.upsert(victim, b"bogus")
            return recovered

        matrix_module._recover = lossy_recover
        try:
            case = run_case("engine", TINY, baseline, ops,
                            "recovery_log.flush.after_write", 1)
        finally:
            matrix_module._recover = real_recover
        assert case.crashed and case.recovered
        assert case.violations


class TestMatrixCli:
    def test_list_sites(self, capsys):
        assert main(["--list-sites"]) == 0
        out = capsys.readouterr().out
        assert "checkpoint.write.after_flush" in out
        assert "transient-ok" in out

    def test_smoke_run_passes(self, capsys):
        assert main(["--smoke", "--seed", "0"]) == 0
        out = capsys.readouterr().out
        assert "0 violations" in out
        assert "transient-noise pass" in out

    def test_scenario_and_hit_overrides(self, capsys):
        code = main(["--smoke", "--scenario", "engine", "--max-hits", "1",
                     "--noise", "0.0"])
        out = capsys.readouterr().out
        # Engine-only run never reaches the sharded boundary site.
        assert code == 1
        assert "sharded.apply_batch.boundary never hit" in out
