"""Shared fixtures for the repro test suite."""

from __future__ import annotations

import random

import pytest

from repro.bwtree import BwTree, BwTreeConfig
from repro.hardware import Machine


@pytest.fixture
def machine() -> Machine:
    """A paper-default 4-core machine."""
    return Machine.paper_default(cores=4)


@pytest.fixture
def one_core_machine() -> Machine:
    return Machine.paper_default(cores=1)


@pytest.fixture
def small_tree(machine: Machine) -> BwTree:
    """An uncapped Bw-tree on the default machine."""
    return BwTree(machine, BwTreeConfig(segment_bytes=1 << 16))


@pytest.fixture
def capped_tree(machine: Machine) -> BwTree:
    """A Bw-tree with a tight cache so evictions actually happen."""
    return BwTree(machine, BwTreeConfig(
        cache_capacity_bytes=48 * 1024,
        segment_bytes=1 << 16,
    ))


@pytest.fixture
def rng() -> random.Random:
    return random.Random(0xC0FFEE)


def load_keys(tree: BwTree, count: int, value_bytes: int = 50,
              seed: int = 7) -> dict:
    """Load ``count`` records; returns the expected key->value dict."""
    source = random.Random(seed)
    expected = {}
    for index in range(count):
        key = b"key%08d" % index
        value = bytes(source.randrange(256) for __ in range(value_bytes))
        tree.upsert(key, value)
        expected[key] = value
    return expected
