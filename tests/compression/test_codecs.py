"""Codec round-trips, ratios, charging, and corpus measurement."""

import hypothesis.strategies as st
import pytest
from hypothesis import given, settings

from repro.compression import (
    ChargedCodec,
    CodecError,
    DeflateCodec,
    RleCodec,
    measure_corpus,
    serialize_records,
)
from repro.hardware import Machine
from repro.storage import Record


class TestRleCodec:
    def test_empty(self):
        codec = RleCodec()
        assert codec.compress(b"") == b""
        assert codec.decompress(b"") == b""

    def test_roundtrip_simple(self):
        codec = RleCodec()
        data = b"aaaaaabbbbbbbcdefggggggg"
        assert codec.decompress(codec.compress(data)) == data

    def test_runs_compress(self):
        codec = RleCodec()
        data = b"a" * 1000
        packed = codec.compress(data)
        assert len(packed) < 20

    def test_incompressible_bounded_overhead(self):
        codec = RleCodec()
        data = bytes(range(256)) * 4
        packed = codec.compress(data)
        assert len(packed) < len(data) * 1.05

    def test_long_run_chunked(self):
        codec = RleCodec()
        data = b"x" * 10_000
        assert codec.decompress(codec.compress(data)) == data

    def test_corrupt_input_raises(self):
        codec = RleCodec()
        with pytest.raises(CodecError):
            codec.decompress(b"\x00")          # truncated header
        with pytest.raises(CodecError):
            codec.decompress(b"\x00\x05")      # missing run byte
        with pytest.raises(CodecError):
            codec.decompress(b"\x01\x05ab")    # short literal
        with pytest.raises(CodecError):
            codec.decompress(b"\x07\x01x")     # unknown tag
        with pytest.raises(CodecError):
            codec.decompress(b"\x00\x00x")     # zero-length chunk

    @settings(max_examples=200, deadline=None)
    @given(data=st.binary(max_size=2048))
    def test_roundtrip_property(self, data):
        codec = RleCodec()
        assert codec.decompress(codec.compress(data)) == data


class TestDeflateCodec:
    def test_roundtrip(self):
        codec = DeflateCodec()
        data = b"hello world " * 100
        assert codec.decompress(codec.compress(data)) == data

    def test_level_validation(self):
        with pytest.raises(ValueError):
            DeflateCodec(level=10)

    def test_bad_payload(self):
        with pytest.raises(CodecError):
            DeflateCodec().decompress(b"not deflate")

    @settings(max_examples=100, deadline=None)
    @given(data=st.binary(max_size=2048))
    def test_roundtrip_property(self, data):
        codec = DeflateCodec()
        assert codec.decompress(codec.compress(data)) == data


class TestChargedCodec:
    def test_charges_cpu_per_byte(self, machine: Machine):
        codec = ChargedCodec(RleCodec(), machine)
        data = b"a" * 1000
        packed = codec.compress(data)
        compress_cost = machine.cpu.busy_us
        assert compress_cost == pytest.approx(
            machine.cpu.costs.compress_per_byte * 1000
        )
        codec.decompress(packed)
        assert machine.cpu.busy_us - compress_cost == pytest.approx(
            machine.cpu.costs.decompress_per_byte * 1000
        )


class TestCorpus:
    def test_measure_reports_ratio(self):
        report = measure_corpus(RleCodec(), [b"a" * 100, b"b" * 100])
        assert report.raw_bytes == 200
        assert report.ratio < 0.2
        assert report.savings_fraction == pytest.approx(1 - report.ratio)

    def test_serialize_records_roundtrip_layout(self):
        records = [Record(b"k1", b"v1"), Record(b"key2", b"value2")]
        blob = serialize_records(records)
        assert b"k1" in blob and b"value2" in blob
        assert len(blob) == sum(8 + len(r.key) + len(r.value)
                                for r in records)

    def test_workload_values_compress_meaningfully(self):
        from repro.workloads import WorkloadGenerator, WorkloadSpec
        spec = WorkloadSpec(record_count=50, value_bytes=500)
        corpus = [v for __, v in WorkloadGenerator(spec).load_items()]
        rle = measure_corpus(RleCodec(), corpus)
        deflate = measure_corpus(DeflateCodec(), corpus)
        assert rle.ratio < 0.95
        assert deflate.ratio < 0.6
