"""Checkpoint manager: writing, uniqueness, discovery, GC interplay."""

import pytest

from repro.hardware import Machine
from repro.storage import (
    CheckpointManager,
    GarbageCollector,
    LogStructuredStore,
    MappingTable,
    PageCache,
    Record,
)


@pytest.fixture
def rig(machine: Machine):
    table = MappingTable()
    store = LogStructuredStore(machine, segment_bytes=1 << 12)
    cache = PageCache(machine, table, store)
    manager = CheckpointManager(store, table)
    return machine, table, store, cache, manager


def add_page(table, cache, key=b"k", payload=b"v" * 50):
    entry = table.allocate()
    entry.state.install_base([Record(key, payload)])
    cache.register(entry)
    cache.flush_page(entry)
    return entry


def test_checkpoint_requires_clean_pages(rig):
    __, table, __s, cache, manager = rig
    entry = table.allocate()
    cache.register(entry)
    with pytest.raises(ValueError):
        manager.write_checkpoint()
    cache.flush_page(entry)
    manager.write_checkpoint()   # now fine


def test_checkpoint_is_durable_and_discoverable(rig):
    __, table, store, cache, manager = rig
    entry = add_page(table, cache)
    manager.write_checkpoint()
    found = CheckpointManager.find_latest(store)
    assert found is not None
    addr, image = found
    chains = image.chains()
    assert entry.page_id in chains
    assert chains[entry.page_id][0] == entry.flash_chain
    assert addr == manager.latest_addr


def test_only_one_live_checkpoint(rig):
    __, table, store, cache, manager = rig
    add_page(table, cache, key=b"a")
    manager.write_checkpoint()
    add_page(table, cache, key=b"b")
    manager.write_checkpoint()
    found = CheckpointManager.find_latest(store)
    assert found is not None
    assert len(found[1].chains()) == 2   # the newer snapshot


def test_find_latest_none_when_unwritten(rig):
    __, __t, store, __c, __m = rig
    assert CheckpointManager.find_latest(store) is None


def test_checkpoint_records_delta_counts(rig):
    __, table, store, cache, manager = rig
    from repro.storage import DeltaKind, RecordDelta
    entry = add_page(table, cache)
    entry.state.prepend_delta(
        RecordDelta(DeltaKind.UPSERT, b"x", b"y", 1)
    )
    cache.resize(entry)
    cache.flush_page(entry)
    manager.write_checkpoint()
    found = CheckpointManager.find_latest(store)
    __, fdr = found[1].chains()[entry.page_id]
    assert fdr == 1


def test_gc_relocates_checkpoint(rig):
    machine, table, store, cache, manager = rig
    gc = GarbageCollector(machine, store, table,
                          checkpoint_manager=manager)
    pages = [add_page(table, cache, key=b"k%d" % i) for i in range(8)]
    manager.write_checkpoint()
    checkpoint_segment = manager.latest_addr.segment_id
    # Invalidate most pages so the checkpoint's segment can be cleaned.
    for entry in pages:
        entry.state.base_flushed = False
        cache.flush_page(entry)
    store.flush()
    if checkpoint_segment in store.segments:
        gc.clean_segment(checkpoint_segment)
        assert manager.latest_addr.segment_id != checkpoint_segment
    found = CheckpointManager.find_latest(store)
    assert found is not None
    assert found[0] == manager.latest_addr


def test_checkpoint_image_size_scales(rig):
    __, table, store, cache, manager = rig
    add_page(table, cache, key=b"a")
    manager.write_checkpoint()
    small = CheckpointManager.find_latest(store)[1].size_bytes
    for index in range(10):
        add_page(table, cache, key=b"extra%d" % index)
    manager.write_checkpoint()
    large = CheckpointManager.find_latest(store)[1].size_bytes
    assert large > small
