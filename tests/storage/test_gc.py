"""Segment garbage collection: relocation, reclamation, policies."""

import pytest

from repro.hardware import Machine
from repro.storage import (
    GarbageCollector,
    LogStructuredStore,
    MappingTable,
    PageCache,
    Record,
)


@pytest.fixture
def rig(machine: Machine):
    table = MappingTable()
    store = LogStructuredStore(machine, segment_bytes=512)
    cache = PageCache(machine, table, store)
    gc = GarbageCollector(machine, store, table)
    return machine, table, store, cache, gc


def flushed_page(table, cache, store, payload: bytes = b"v" * 50):
    entry = table.allocate()
    entry.state.install_base([Record(b"k%d" % entry.page_id, payload)])
    cache.register(entry)
    cache.flush_page(entry)
    return entry


def test_no_victim_when_everything_live(rig):
    __, table, store, cache, gc = rig
    flushed_page(table, cache, store)
    store.flush()
    assert gc.run_once(max_occupancy=0.5) is None


def test_cleaning_relocates_live_and_reclaims_dead(rig):
    machine, table, store, cache, gc = rig
    a = flushed_page(table, cache, store)
    b = flushed_page(table, cache, store)
    store.flush()
    segment = a.flash_chain[0].segment_id
    # Rewrite page a: its old image goes dead.
    a.state.base_flushed = False
    cache.flush_page(a)
    store.flush()
    assert store.dead_bytes > 0
    cleaned = gc.run_once(max_occupancy=0.99)
    assert cleaned == segment
    assert gc.stats.bytes_reclaimed > 0
    assert gc.stats.images_relocated == 1   # page b moved
    # b's chain now points somewhere valid:
    result = store.read(b.flash_chain[0])
    assert result.image.page_id == b.page_id


def test_cleaning_preserves_contents_after_fetch(rig):
    machine, table, store, cache, gc = rig
    pages = [flushed_page(table, cache, store) for __ in range(6)]
    store.flush()
    # Invalidate half the pages by rewriting them.
    for entry in pages[:3]:
        entry.state.base_flushed = False
        cache.flush_page(entry)
    store.flush()
    gc.run_until_utilization(0.95)
    for entry in pages:
        cache.evict(entry) if entry.state else None
    store.flush()
    for entry in pages:
        cache.fetch(entry)
        probe = entry.state.lookup(b"k%d" % entry.page_id)
        assert probe.found


def test_unreferenced_live_image_is_dropped_not_relocated(rig):
    __, table, store, cache, gc = rig
    entry = flushed_page(table, cache, store)
    other = flushed_page(table, cache, store)
    store.flush()
    segment = entry.flash_chain[0].segment_id
    # Free the page without invalidating: simulates a merged-away page.
    entry.flash_chain = []
    table.free(entry.page_id)
    gc.clean_segment(segment)
    assert gc.stats.images_relocated == 1   # only `other`
    assert segment not in store.segments
    del other


def test_run_until_utilization_validates_target(rig):
    *__, gc = rig
    with pytest.raises(ValueError):
        gc.run_until_utilization(0.0)
    with pytest.raises(ValueError):
        gc.run_until_utilization(1.5)


def test_reclaim_efficiency_reporting(rig):
    __, table, store, cache, gc = rig
    assert gc.stats.reclaim_efficiency == 0.0
    a = flushed_page(table, cache, store)
    flushed_page(table, cache, store)
    store.flush()
    a.state.base_flushed = False
    cache.flush_page(a)
    store.flush()
    gc.run_once(max_occupancy=0.99)
    assert gc.stats.reclaim_efficiency > 0.0
