"""Records, deltas, and DataPageState semantics."""

import pytest

from repro.storage import (
    DataPageState,
    DeltaKind,
    PageImage,
    Record,
    RecordDelta,
    RECORD_OVERHEAD_BYTES,
    DELTA_OVERHEAD_BYTES,
    PAGE_HEADER_BYTES,
    full_image_size_bytes,
)


def rec(key: bytes, value: bytes = b"v", ts: int = 0) -> Record:
    return Record(key, value, ts)


def up(key: bytes, value: bytes = b"v", ts: int = 0) -> RecordDelta:
    return RecordDelta(DeltaKind.UPSERT, key, value, ts)


def dl(key: bytes, ts: int = 0) -> RecordDelta:
    return RecordDelta(DeltaKind.DELETE, key, None, ts)


class TestSizes:
    def test_record_size(self):
        assert rec(b"ab", b"xyz").size_bytes == RECORD_OVERHEAD_BYTES + 5

    def test_upsert_delta_size(self):
        assert up(b"ab", b"xyz").size_bytes == DELTA_OVERHEAD_BYTES + 5

    def test_delete_delta_size(self):
        assert dl(b"ab").size_bytes == DELTA_OVERHEAD_BYTES + 2

    def test_full_image_size(self):
        records = [rec(b"a"), rec(b"b")]
        expected = PAGE_HEADER_BYTES + sum(r.size_bytes for r in records)
        assert full_image_size_bytes(records) == expected


class TestDeltaValidation:
    def test_upsert_requires_value(self):
        with pytest.raises(ValueError):
            RecordDelta(DeltaKind.UPSERT, b"k", None)

    def test_delete_rejects_value(self):
        with pytest.raises(ValueError):
            RecordDelta(DeltaKind.DELETE, b"k", b"v")


class TestConstruction:
    def test_fresh_page_has_empty_present_base(self):
        state = DataPageState(1)
        assert state.base_present
        assert state.base == []

    def test_explicit_none_base_means_evicted(self):
        """The regression behind the blind-update data-loss bug: an
        explicit ``base=None`` must NOT be coerced to an empty base."""
        state = DataPageState(1, base=None)
        assert not state.base_present
        probe = state.lookup(b"k")
        assert probe.base_missing


class TestLookup:
    def test_finds_in_base(self):
        state = DataPageState(1, base=[rec(b"a"), rec(b"b", b"B")])
        probe = state.lookup(b"b")
        assert probe.found and probe.value == b"B"
        assert probe.searched_base
        assert probe.delta_hops == 0

    def test_delta_overrides_base(self):
        state = DataPageState(1, base=[rec(b"a", b"old")])
        state.prepend_delta(up(b"a", b"new"))
        probe = state.lookup(b"a")
        assert probe.value == b"new"
        assert probe.delta_hops == 1
        assert not probe.searched_base

    def test_newest_delta_wins(self):
        state = DataPageState(1)
        state.prepend_delta(up(b"a", b"v1"))
        state.prepend_delta(up(b"a", b"v2"))
        assert state.lookup(b"a").value == b"v2"

    def test_delete_delta_hides_base_record(self):
        state = DataPageState(1, base=[rec(b"a")])
        state.prepend_delta(dl(b"a"))
        probe = state.lookup(b"a")
        assert not probe.found
        assert not probe.base_missing

    def test_miss_counts_hops(self):
        state = DataPageState(1, base=[rec(b"a")])
        state.prepend_delta(up(b"x", b"1"))
        state.prepend_delta(up(b"y", b"2"))
        probe = state.lookup(b"zz")
        assert probe.delta_hops == 2
        assert not probe.found

    def test_base_missing_when_uncovered(self):
        state = DataPageState(1, base=None, deltas=[up(b"a", b"1")])
        assert state.lookup(b"a").found           # covered by delta
        assert state.lookup(b"b").base_missing    # must fetch


class TestConsolidate:
    def test_folds_upserts_and_deletes(self):
        state = DataPageState(1, base=[rec(b"a"), rec(b"b"), rec(b"c")])
        state.prepend_delta(dl(b"b"))
        state.prepend_delta(up(b"d", b"D"))
        state.consolidate()
        assert [r.key for r in state.base] == [b"a", b"c", b"d"]
        assert state.deltas == []

    def test_resets_persistence_bookkeeping(self):
        state = DataPageState(1, base=[rec(b"a")])
        state.base_flushed = True
        state.prepend_delta(up(b"b", b"B"))
        state.mark_deltas_flushed()
        state.consolidate()
        assert not state.base_flushed
        assert state.flushed_delta_count == 0

    def test_requires_base(self):
        state = DataPageState(1, base=None)
        with pytest.raises(ValueError):
            state.consolidate()

    def test_consolidate_to_empty(self):
        state = DataPageState(1, base=[rec(b"a")])
        state.prepend_delta(dl(b"a"))
        state.consolidate()
        assert state.base == []


class TestIterRecords:
    def test_merges_in_key_order(self):
        state = DataPageState(1, base=[rec(b"b"), rec(b"d")])
        state.prepend_delta(up(b"a", b"1"))
        state.prepend_delta(up(b"c", b"2"))
        state.prepend_delta(up(b"e", b"3"))
        keys = [r.key for r in state.iter_records()]
        assert keys == [b"a", b"b", b"c", b"d", b"e"]

    def test_respects_deletes_and_overrides(self):
        state = DataPageState(1, base=[rec(b"a", b"old"), rec(b"b")])
        state.prepend_delta(dl(b"b"))
        state.prepend_delta(up(b"a", b"new"))
        records = list(state.iter_records())
        assert [(r.key, r.value) for r in records] == [(b"a", b"new")]

    def test_requires_base(self):
        with pytest.raises(ValueError):
            list(DataPageState(1, base=None).iter_records())


class TestFlushBookkeeping:
    def test_unflushed_deltas_oldest_first(self):
        state = DataPageState(1)
        state.prepend_delta(up(b"a", b"1", ts=1))
        state.prepend_delta(up(b"b", b"2", ts=2))
        pending = state.unflushed_deltas()
        assert [d.timestamp for d in pending] == [1, 2]

    def test_mark_flushed_then_new_deltas(self):
        state = DataPageState(1)
        state.prepend_delta(up(b"a", b"1", ts=1))
        state.mark_deltas_flushed()
        state.prepend_delta(up(b"b", b"2", ts=2))
        pending = state.unflushed_deltas()
        assert [d.timestamp for d in pending] == [2]

    def test_has_unflushed_changes(self):
        state = DataPageState(1)
        assert state.has_unflushed_changes   # new base never flushed
        state.base_flushed = True
        assert not state.has_unflushed_changes
        state.prepend_delta(up(b"a", b"1"))
        assert state.has_unflushed_changes
        state.mark_deltas_flushed()
        assert not state.has_unflushed_changes


class TestDropInstallBase:
    def test_drop_base_keeps_deltas(self):
        state = DataPageState(1, base=[rec(b"a")])
        state.prepend_delta(up(b"b", b"1"))
        freed = state.drop_base()
        assert freed > 0
        assert not state.base_present
        assert state.chain_length == 1

    def test_replace_base_marks_unflushed(self):
        state = DataPageState(1, base=[rec(b"a")])
        state.base_flushed = True
        state.replace_base([rec(b"z")])
        assert not state.base_flushed

    def test_install_base_preserves_flush_flag(self):
        state = DataPageState(1, base=None)
        state.base_flushed = True
        state.install_base([rec(b"a")])
        assert state.base_flushed


class TestPageImage:
    def test_full_image_rejects_deltas(self):
        with pytest.raises(ValueError):
            PageImage("full", 1, deltas=(up(b"a", b"1"),))

    def test_delta_image_rejects_records(self):
        with pytest.raises(ValueError):
            PageImage("delta", 1, records=(rec(b"a"),))

    def test_unknown_kind_rejected(self):
        with pytest.raises(ValueError):
            PageImage("mystery", 1)

    def test_sizes(self):
        full = PageImage("full", 1, records=(rec(b"a"),))
        delta = PageImage("delta", 1, deltas=(up(b"a", b"1"),))
        assert full.size_bytes == PAGE_HEADER_BYTES + rec(b"a").size_bytes
        assert delta.size_bytes == PAGE_HEADER_BYTES + up(b"a", b"1").size_bytes
