"""Mapping table: allocation, location tracking, live-address sets."""

import pytest

from repro.storage import FlashAddr, MappingTable


def test_allocate_assigns_sequential_ids():
    table = MappingTable()
    first = table.allocate()
    second = table.allocate()
    assert first.page_id == 0
    assert second.page_id == 1
    assert len(table) == 2


def test_new_page_is_resident_and_clean_base():
    entry = MappingTable().allocate()
    assert entry.resident
    assert entry.fully_resident
    assert entry.dirty   # fresh empty base has never been flushed


def test_get_unknown_raises():
    with pytest.raises(KeyError):
        MappingTable().get(42)


def test_free_removes():
    table = MappingTable()
    entry = table.allocate()
    table.free(entry.page_id)
    assert entry.page_id not in table
    with pytest.raises(KeyError):
        table.free(entry.page_id)


def test_entries_sorted_by_id():
    table = MappingTable()
    for __ in range(5):
        table.allocate()
    assert [e.page_id for e in table.entries()] == [0, 1, 2, 3, 4]


def test_resident_bytes_sums_states():
    table = MappingTable()
    a = table.allocate()
    b = table.allocate()
    from repro.storage import Record
    a.state.install_base([Record(b"k", b"v" * 100)])
    assert table.resident_bytes() == (a.resident_bytes
                                      + b.resident_bytes)


def test_current_address_set_maps_addr_to_page():
    table = MappingTable()
    entry = table.allocate()
    addr1 = FlashAddr(0, 0, 100)
    addr2 = FlashAddr(0, 100, 50)
    entry.flash_chain = [addr1, addr2]
    other = table.allocate()
    other.flash_chain = [FlashAddr(1, 0, 10)]
    live = table.current_address_set()
    assert live[addr1] == entry.page_id
    assert live[addr2] == entry.page_id
    assert len(live) == 3


def test_flash_addr_validation():
    with pytest.raises(ValueError):
        FlashAddr(0, 0, 0)


def test_entry_flags():
    table = MappingTable()
    entry = table.allocate()
    entry.state.base_flushed = True
    assert not entry.dirty
    entry.state = None
    assert not entry.resident
    assert not entry.fully_resident
    assert entry.resident_bytes == 0
