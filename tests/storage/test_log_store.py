"""Log-structured store: buffering, large writes, occupancy, reads."""

import pytest

from repro.hardware import Machine
from repro.storage import LogStructuredStore, PageImage, Record


def image(page_id: int, nbytes: int = 100) -> PageImage:
    value = b"x" * max(1, nbytes - 32 - 16 - 1)
    return PageImage("full", page_id, records=(Record(b"k", value),))


@pytest.fixture
def store(machine: Machine) -> LogStructuredStore:
    return LogStructuredStore(machine, segment_bytes=1024)


def test_append_returns_address_in_open_segment(store):
    addr = store.append(image(1, 100))
    assert addr.offset == 0
    assert addr.nbytes == image(1, 100).size_bytes


def test_appends_pack_sequentially(store):
    first = store.append(image(1, 100))
    second = store.append(image(2, 100))
    assert second.offset == first.nbytes


def test_buffered_read_costs_no_io(store, machine):
    addr = store.append(image(1, 100))
    before = machine.ssd.total_ios
    result = store.read(addr)
    assert result.from_write_buffer
    assert machine.ssd.total_ios == before


def test_flush_writes_one_large_io(store, machine):
    store.append(image(1, 300))
    store.append(image(2, 300))
    before_writes = machine.ssd.counters.get("ssd.writes")
    store.flush()
    assert machine.ssd.counters.get("ssd.writes") == before_writes + 1
    assert machine.ssd.stored_bytes > 0


def test_flush_empty_buffer_is_noop(store):
    assert store.flush() is None


def test_auto_flush_when_segment_fills(store, machine):
    # Segment is 1024 bytes; four ~300-byte images overflow it once.
    for page_id in range(4):
        store.append(image(page_id, 300))
    assert store.segment_flushes == 1


def test_read_after_flush_costs_one_io(store, machine):
    addr = store.append(image(1, 100))
    store.flush()
    before = machine.ssd.total_ios
    result = store.read(addr)
    assert not result.from_write_buffer
    assert machine.ssd.total_ios == before + 1
    assert result.image.records[0].key == b"k"


def test_read_unknown_address_raises(store):
    from repro.storage import FlashAddr
    with pytest.raises(KeyError):
        store.read(FlashAddr(99, 0, 10))


def test_oversized_image_rejected(store):
    with pytest.raises(ValueError):
        store.append(image(1, 2048))


def test_invalidate_flushed_image_tracks_dead_bytes(store):
    addr = store.append(image(1, 100))
    store.append(image(2, 100))
    store.flush()
    assert store.utilization() == 1.0
    store.invalidate(addr)
    assert store.dead_bytes == addr.nbytes
    assert store.utilization() < 1.0


def test_invalidate_buffered_image_leaves_hole(store):
    addr = store.append(image(1, 100))
    store.append(image(2, 100))
    store.invalidate(addr)
    store.flush()
    info = store.segments[addr.segment_id]
    assert info.live_bytes < info.total_bytes


def test_double_invalidate_is_idempotent_on_live_bytes(store):
    addr = store.append(image(1, 100))
    store.flush()
    store.invalidate(addr)
    dead = store.dead_bytes
    store.invalidate(addr)
    assert store.dead_bytes == dead


def test_live_images_excludes_dead(store):
    addr1 = store.append(image(1, 100))
    addr2 = store.append(image(2, 100))
    store.flush()
    store.invalidate(addr1)
    live = store.live_images(addr1.segment_id)
    assert [a for a, __ in live] == [addr2]


def test_drop_segment_releases_flash(store, machine):
    store.append(image(1, 100))
    store.flush()
    segment_id = store.flushed_segment_ids[0]
    stored_before = machine.ssd.stored_bytes
    reclaimed = store.drop_segment(segment_id)
    assert reclaimed > 0
    assert machine.ssd.stored_bytes == stored_before - reclaimed
    assert segment_id not in store.segments


def test_utilization_with_nothing_flushed_is_one(store):
    assert store.utilization() == 1.0


def test_bytes_appended_accumulates(store):
    store.append(image(1, 100))
    store.append(image(2, 200))
    assert store.bytes_appended == (image(1, 100).size_bytes
                                    + image(2, 200).size_bytes)
    assert store.images_appended == 2
