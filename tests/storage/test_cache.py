"""Page cache: residency accounting, flush policies, eviction, fetch."""

import pytest

from repro.hardware import Machine
from repro.storage import (
    DataPageState,
    DeltaKind,
    EvictionPolicy,
    LogStructuredStore,
    MappingTable,
    PageCache,
    Record,
    RecordDelta,
)


def up(key: bytes, value: bytes, ts: int = 0) -> RecordDelta:
    return RecordDelta(DeltaKind.UPSERT, key, value, ts)


@pytest.fixture
def rig(machine: Machine):
    table = MappingTable()
    store = LogStructuredStore(machine, segment_bytes=1 << 14)
    cache = PageCache(machine, table, store, capacity_bytes=None)
    return machine, table, store, cache


def make_page(table, cache, records=None):
    entry = table.allocate()
    if records:
        entry.state.install_base(records)
    cache.register(entry)
    return entry


class TestResidency:
    def test_register_accounts_dram(self, rig):
        machine, table, store, cache = rig
        entry = make_page(table, cache, [Record(b"a", b"x" * 100)])
        assert machine.dram.bytes_for("page_cache") == entry.resident_bytes

    def test_double_register_rejected(self, rig):
        __, table, __s, cache = rig
        entry = make_page(table, cache)
        with pytest.raises(ValueError):
            cache.register(entry)

    def test_resize_tracks_growth(self, rig):
        machine, table, __, cache = rig
        entry = make_page(table, cache)
        entry.state.prepend_delta(up(b"a", b"x" * 50))
        cache.resize(entry)
        assert machine.dram.bytes_for("page_cache") == entry.resident_bytes

    def test_touch_updates_recency_and_clock_time(self, rig):
        machine, table, __, cache = rig
        entry = make_page(table, cache)
        machine.clock.advance(10.0)
        cache.touch(entry)
        assert entry.last_access == pytest.approx(10.0)
        assert entry.access_count >= 1


class TestFlush:
    def test_first_flush_writes_full_image(self, rig):
        __, table, store, cache = rig
        entry = make_page(table, cache, [Record(b"a", b"v")])
        cache.flush_page(entry)
        assert len(entry.flash_chain) == 1
        assert cache.stats.flushes_full == 1
        assert entry.state.base_flushed

    def test_second_flush_is_delta_only(self, rig):
        __, table, store, cache = rig
        entry = make_page(table, cache, [Record(b"a", b"v")])
        cache.flush_page(entry)
        entry.state.prepend_delta(up(b"b", b"w"))
        cache.resize(entry)
        cache.flush_page(entry)
        assert len(entry.flash_chain) == 2
        assert cache.stats.flushes_delta == 1
        assert entry.flushed_delta_records == 1

    def test_fragment_cap_forces_full_rewrite(self, rig):
        __, table, store, cache = rig
        cache.max_flash_fragments = 2
        entry = make_page(table, cache, [Record(b"a", b"v")])
        cache.flush_page(entry)
        chain_lengths = []
        for index in range(2):
            entry.state.prepend_delta(up(b"k%d" % index, b"w", ts=index))
            cache.resize(entry)
            cache.flush_page(entry)
            chain_lengths.append(len(entry.flash_chain))
        # First delta flush appends a fragment; the second hits the cap and
        # folds everything back into one full image.
        assert chain_lengths == [2, 1]
        assert entry.flushed_delta_records == 0
        # The superseded images become holes/dead space once flushed.
        store.flush()
        assert store.dead_bytes > 0

    def test_clean_page_flush_is_noop(self, rig):
        __, table, store, cache = rig
        entry = make_page(table, cache, [Record(b"a", b"v")])
        cache.flush_page(entry)
        appended = store.images_appended
        cache.flush_page(entry)
        assert store.images_appended == appended

    def test_flush_without_state_rejected(self, rig):
        __, table, __s, cache = rig
        entry = make_page(table, cache, [Record(b"a", b"v")])
        cache.flush_page(entry)
        cache.evict(entry)
        with pytest.raises(ValueError):
            cache.flush_page(entry)


class TestEvictFetch:
    def test_evict_drops_state_and_dram(self, rig):
        machine, table, __, cache = rig
        entry = make_page(table, cache, [Record(b"a", b"v" * 200)])
        cache.evict(entry)
        assert entry.state is None
        assert machine.dram.bytes_for("page_cache") == 0
        assert cache.stats.evictions == 1

    def test_evict_flushes_dirty_state_first(self, rig):
        __, table, store, cache = rig
        entry = make_page(table, cache, [Record(b"a", b"v")])
        cache.evict(entry)
        assert entry.flash_chain   # persisted on the way out

    def test_fetch_restores_contents(self, rig):
        __, table, store, cache = rig
        entry = make_page(table, cache, [Record(b"a", b"v")])
        entry.state.prepend_delta(up(b"b", b"w"))
        cache.resize(entry)
        cache.evict(entry)
        store.flush()
        ios = cache.fetch(entry)
        assert ios >= 1
        assert entry.state.lookup(b"a").value == b"v"
        assert entry.state.lookup(b"b").value == b"w"

    def test_fetch_resident_page_is_free(self, rig):
        __, table, __s, cache = rig
        entry = make_page(table, cache, [Record(b"a", b"v")])
        assert cache.fetch(entry) == 0

    def test_fetch_unflushed_page_rejected(self, rig):
        __, table, __s, cache = rig
        entry = make_page(table, cache)
        entry.state = None
        with pytest.raises(ValueError):
            cache.fetch(entry)

    def test_blind_delta_then_fetch_merges_chain(self, rig):
        """A blind update posted while the page was evicted must merge
        with the flash chain on the next fetch (the Section 6.2 path)."""
        __, table, store, cache = rig
        entry = make_page(table, cache, [Record(b"a", b"v")])
        entry.state.prepend_delta(up(b"b", b"w", ts=1))
        cache.resize(entry)
        cache.evict(entry)        # full image + delta image? one delta flush
        store.flush()
        # blind post to the evicted page
        state = DataPageState(entry.page_id, base=None,
                              deltas=[up(b"c", b"z", ts=2)])
        state.base_flushed = True
        entry.state = state
        cache.register(entry)
        cache.fetch(entry)
        assert entry.state.lookup(b"a").value == b"v"
        assert entry.state.lookup(b"b").value == b"w"
        assert entry.state.lookup(b"c").value == b"z"


class TestRecordCacheMode:
    def test_evict_keeps_deltas(self, machine):
        table = MappingTable()
        store = LogStructuredStore(machine, segment_bytes=1 << 14)
        cache = PageCache(machine, table, store, record_cache=True)
        entry = table.allocate()
        entry.state.install_base([Record(b"a", b"v" * 100)])
        cache.register(entry)
        cache.flush_page(entry)   # base persisted: deltas can be retained
        entry.state.prepend_delta(up(b"b", b"w"))
        cache.resize(entry)
        cache.evict(entry)
        assert entry.state is not None
        assert not entry.state.base_present
        assert entry.state.lookup(b"b").value == b"w"
        assert cache.stats.record_cache_retained == 1

    def test_fetch_after_record_cache_evict_reads_base_only(self, machine):
        table = MappingTable()
        store = LogStructuredStore(machine, segment_bytes=1 << 14)
        cache = PageCache(machine, table, store, record_cache=True)
        entry = table.allocate()
        entry.state.install_base([Record(b"a", b"v")])
        cache.register(entry)
        cache.flush_page(entry)
        entry.state.prepend_delta(up(b"b", b"w"))
        cache.resize(entry)
        cache.evict(entry)
        store.flush()
        ios = cache.fetch(entry)
        assert ios == 1   # base image only; deltas were retained
        assert entry.state.lookup(b"a").value == b"v"
        assert entry.state.lookup(b"b").value == b"w"


class TestCapacity:
    def test_ensure_capacity_evicts_lru_first(self, machine):
        table = MappingTable()
        store = LogStructuredStore(machine, segment_bytes=1 << 14)
        cache = PageCache(machine, table, store, capacity_bytes=1200)
        entries = []
        for index in range(4):
            entry = table.allocate()
            entry.state.install_base(
                [Record(b"k%d" % index, b"v" * 300)]
            )
            cache.register(entry)
            entries.append(entry)
        cache.touch(entries[0])   # make page 0 most recently used
        cache.ensure_capacity()
        assert cache.resident_bytes <= 1200
        assert entries[0].state is not None      # MRU survived
        assert entries[1].state is None          # LRU went first

    def test_protected_page_never_evicted(self, machine):
        table = MappingTable()
        store = LogStructuredStore(machine, segment_bytes=1 << 14)
        cache = PageCache(machine, table, store, capacity_bytes=400)
        protected = table.allocate()
        protected.state.install_base([Record(b"a", b"v" * 300)])
        cache.register(protected)
        other = table.allocate()
        other.state.install_base([Record(b"b", b"v" * 300)])
        cache.register(other)
        cache.ensure_capacity(protect={protected.page_id})
        assert protected.state is not None

    def test_unlimited_capacity_never_evicts(self, rig):
        __, table, __s, cache = rig
        for index in range(10):
            entry = table.allocate()
            entry.state.install_base([Record(b"k%d" % index, b"v" * 500)])
            cache.register(entry)
        assert cache.ensure_capacity() == 0
        assert cache.resident_pages == 10


class TestTiPolicy:
    def test_evict_idle_pages_by_interval(self, machine):
        table = MappingTable()
        store = LogStructuredStore(machine, segment_bytes=1 << 14)
        cache = PageCache(machine, table, store,
                          policy=EvictionPolicy.TI_THRESHOLD,
                          ti_seconds=45.0)
        old = table.allocate()
        old.state.install_base([Record(b"a", b"v")])
        cache.register(old)
        machine.clock.advance(100.0)
        fresh = table.allocate()
        fresh.state.install_base([Record(b"b", b"v")])
        cache.register(fresh)
        evicted = cache.evict_idle_pages()
        assert evicted == 1
        assert old.state is None
        assert fresh.state is not None
