"""Page cache: residency accounting, flush policies, eviction, fetch."""

import pytest

from repro.core import tier_pair_breakeven
from repro.hardware import Machine, StorageHierarchy
from repro.storage import (
    DataPageState,
    DeltaKind,
    EvictionPolicy,
    LogStructuredStore,
    MappingTable,
    PageCache,
    PageImage,
    Record,
    RecordDelta,
)


def up(key: bytes, value: bytes, ts: int = 0) -> RecordDelta:
    return RecordDelta(DeltaKind.UPSERT, key, value, ts)


@pytest.fixture
def rig(machine: Machine):
    table = MappingTable()
    store = LogStructuredStore(machine, segment_bytes=1 << 14)
    cache = PageCache(machine, table, store, capacity_bytes=None)
    return machine, table, store, cache


def make_page(table, cache, records=None):
    entry = table.allocate()
    if records:
        entry.state.install_base(records)
    cache.register(entry)
    return entry


class TestResidency:
    def test_register_accounts_dram(self, rig):
        machine, table, store, cache = rig
        entry = make_page(table, cache, [Record(b"a", b"x" * 100)])
        assert machine.dram.bytes_for("page_cache") == entry.resident_bytes

    def test_double_register_rejected(self, rig):
        __, table, __s, cache = rig
        entry = make_page(table, cache)
        with pytest.raises(ValueError):
            cache.register(entry)

    def test_resize_tracks_growth(self, rig):
        machine, table, __, cache = rig
        entry = make_page(table, cache)
        entry.state.prepend_delta(up(b"a", b"x" * 50))
        cache.resize(entry)
        assert machine.dram.bytes_for("page_cache") == entry.resident_bytes

    def test_touch_updates_recency_and_clock_time(self, rig):
        machine, table, __, cache = rig
        entry = make_page(table, cache)
        machine.clock.advance(10.0)
        cache.touch(entry)
        assert entry.last_access == pytest.approx(10.0)
        assert entry.access_count >= 1


class TestFlush:
    def test_first_flush_writes_full_image(self, rig):
        __, table, store, cache = rig
        entry = make_page(table, cache, [Record(b"a", b"v")])
        cache.flush_page(entry)
        assert len(entry.flash_chain) == 1
        assert cache.stats.flushes_full == 1
        assert entry.state.base_flushed

    def test_second_flush_is_delta_only(self, rig):
        __, table, store, cache = rig
        entry = make_page(table, cache, [Record(b"a", b"v")])
        cache.flush_page(entry)
        entry.state.prepend_delta(up(b"b", b"w"))
        cache.resize(entry)
        cache.flush_page(entry)
        assert len(entry.flash_chain) == 2
        assert cache.stats.flushes_delta == 1
        assert entry.flushed_delta_records == 1

    def test_fragment_cap_forces_full_rewrite(self, rig):
        __, table, store, cache = rig
        cache.max_flash_fragments = 2
        entry = make_page(table, cache, [Record(b"a", b"v")])
        cache.flush_page(entry)
        chain_lengths = []
        for index in range(2):
            entry.state.prepend_delta(up(b"k%d" % index, b"w", ts=index))
            cache.resize(entry)
            cache.flush_page(entry)
            chain_lengths.append(len(entry.flash_chain))
        # First delta flush appends a fragment; the second hits the cap and
        # folds everything back into one full image.
        assert chain_lengths == [2, 1]
        assert entry.flushed_delta_records == 0
        # The superseded images become holes/dead space once flushed.
        store.flush()
        assert store.dead_bytes > 0

    def test_clean_page_flush_is_noop(self, rig):
        __, table, store, cache = rig
        entry = make_page(table, cache, [Record(b"a", b"v")])
        cache.flush_page(entry)
        appended = store.images_appended
        cache.flush_page(entry)
        assert store.images_appended == appended

    def test_flush_without_state_rejected(self, rig):
        __, table, __s, cache = rig
        entry = make_page(table, cache, [Record(b"a", b"v")])
        cache.flush_page(entry)
        cache.evict(entry)
        with pytest.raises(ValueError):
            cache.flush_page(entry)


class TestEvictFetch:
    def test_evict_drops_state_and_dram(self, rig):
        machine, table, __, cache = rig
        entry = make_page(table, cache, [Record(b"a", b"v" * 200)])
        cache.evict(entry)
        assert entry.state is None
        assert machine.dram.bytes_for("page_cache") == 0
        assert cache.stats.evictions == 1

    def test_evict_flushes_dirty_state_first(self, rig):
        __, table, store, cache = rig
        entry = make_page(table, cache, [Record(b"a", b"v")])
        cache.evict(entry)
        assert entry.flash_chain   # persisted on the way out

    def test_fetch_restores_contents(self, rig):
        __, table, store, cache = rig
        entry = make_page(table, cache, [Record(b"a", b"v")])
        entry.state.prepend_delta(up(b"b", b"w"))
        cache.resize(entry)
        cache.evict(entry)
        store.flush()
        ios = cache.fetch(entry)
        assert ios >= 1
        assert entry.state.lookup(b"a").value == b"v"
        assert entry.state.lookup(b"b").value == b"w"

    def test_fetch_resident_page_is_free(self, rig):
        __, table, __s, cache = rig
        entry = make_page(table, cache, [Record(b"a", b"v")])
        assert cache.fetch(entry) == 0

    def test_fetch_unflushed_page_rejected(self, rig):
        __, table, __s, cache = rig
        entry = make_page(table, cache)
        entry.state = None
        with pytest.raises(ValueError):
            cache.fetch(entry)

    def test_blind_delta_then_fetch_merges_chain(self, rig):
        """A blind update posted while the page was evicted must merge
        with the flash chain on the next fetch (the Section 6.2 path)."""
        __, table, store, cache = rig
        entry = make_page(table, cache, [Record(b"a", b"v")])
        entry.state.prepend_delta(up(b"b", b"w", ts=1))
        cache.resize(entry)
        cache.evict(entry)        # full image + delta image? one delta flush
        store.flush()
        # blind post to the evicted page
        state = DataPageState(entry.page_id, base=None,
                              deltas=[up(b"c", b"z", ts=2)])
        state.base_flushed = True
        entry.state = state
        cache.register(entry)
        cache.fetch(entry)
        assert entry.state.lookup(b"a").value == b"v"
        assert entry.state.lookup(b"b").value == b"w"
        assert entry.state.lookup(b"c").value == b"z"


class TestRecordCacheMode:
    def test_evict_keeps_deltas(self, machine):
        table = MappingTable()
        store = LogStructuredStore(machine, segment_bytes=1 << 14)
        cache = PageCache(machine, table, store, record_cache=True)
        entry = table.allocate()
        entry.state.install_base([Record(b"a", b"v" * 100)])
        cache.register(entry)
        cache.flush_page(entry)   # base persisted: deltas can be retained
        entry.state.prepend_delta(up(b"b", b"w"))
        cache.resize(entry)
        cache.evict(entry)
        assert entry.state is not None
        assert not entry.state.base_present
        assert entry.state.lookup(b"b").value == b"w"
        assert cache.stats.record_cache_retained == 1

    def test_fetch_after_record_cache_evict_reads_base_only(self, machine):
        table = MappingTable()
        store = LogStructuredStore(machine, segment_bytes=1 << 14)
        cache = PageCache(machine, table, store, record_cache=True)
        entry = table.allocate()
        entry.state.install_base([Record(b"a", b"v")])
        cache.register(entry)
        cache.flush_page(entry)
        entry.state.prepend_delta(up(b"b", b"w"))
        cache.resize(entry)
        cache.evict(entry)
        store.flush()
        ios = cache.fetch(entry)
        assert ios == 1   # base image only; deltas were retained
        assert entry.state.lookup(b"a").value == b"v"
        assert entry.state.lookup(b"b").value == b"w"


class TestCapacity:
    def test_ensure_capacity_evicts_lru_first(self, machine):
        table = MappingTable()
        store = LogStructuredStore(machine, segment_bytes=1 << 14)
        cache = PageCache(machine, table, store, capacity_bytes=1200)
        entries = []
        for index in range(4):
            entry = table.allocate()
            entry.state.install_base(
                [Record(b"k%d" % index, b"v" * 300)]
            )
            cache.register(entry)
            entries.append(entry)
        cache.touch(entries[0])   # make page 0 most recently used
        cache.ensure_capacity()
        assert cache.resident_bytes <= 1200
        assert entries[0].state is not None      # MRU survived
        assert entries[1].state is None          # LRU went first

    def test_protected_page_never_evicted(self, machine):
        table = MappingTable()
        store = LogStructuredStore(machine, segment_bytes=1 << 14)
        cache = PageCache(machine, table, store, capacity_bytes=400)
        protected = table.allocate()
        protected.state.install_base([Record(b"a", b"v" * 300)])
        cache.register(protected)
        other = table.allocate()
        other.state.install_base([Record(b"b", b"v" * 300)])
        cache.register(other)
        cache.ensure_capacity(protect={protected.page_id})
        assert protected.state is not None

    def test_unlimited_capacity_never_evicts(self, rig):
        __, table, __s, cache = rig
        for index in range(10):
            entry = table.allocate()
            entry.state.install_base([Record(b"k%d" % index, b"v" * 500)])
            cache.register(entry)
        assert cache.ensure_capacity() == 0
        assert cache.resident_pages == 10


class TestTiPolicy:
    def test_evict_idle_pages_by_interval(self, machine):
        table = MappingTable()
        store = LogStructuredStore(machine, segment_bytes=1 << 14)
        cache = PageCache(machine, table, store,
                          policy=EvictionPolicy.TI_THRESHOLD,
                          ti_seconds=45.0)
        old = table.allocate()
        old.state.install_base([Record(b"a", b"v")])
        cache.register(old)
        machine.clock.advance(100.0)
        fresh = table.allocate()
        fresh.state.install_base([Record(b"b", b"v")])
        cache.register(fresh)
        evicted = cache.evict_idle_pages()
        assert evicted == 1
        assert old.state is None
        assert fresh.state is not None


class TestDemoteNotDrop:
    """Eviction demotes flushed victims into middle tiers, fetch promotes."""

    def make_tiered(self, machine, **cache_kwargs):
        table = MappingTable()
        store = LogStructuredStore(machine, segment_bytes=1 << 14)
        cache = PageCache(machine, table, store, demote_to_tiers=True,
                          **cache_kwargs)
        return table, store, cache

    def warm_page(self, machine, table, cache, key=b"a"):
        """A registered, flushed page with a finite observed interval."""
        entry = make_page(table, cache, [Record(key, b"v" * 64)])
        cache.flush_page(entry)
        machine.clock.advance(10.0)
        cache.touch(entry)
        return entry

    def test_middle_tiers_required(self, machine):
        table = MappingTable()
        store = LogStructuredStore(machine, segment_bytes=1 << 14)
        with pytest.raises(ValueError, match="between"):
            PageCache(machine, table, store, demote_to_tiers=True,
                      demote_hierarchy=StorageHierarchy.paper_2018())

    def test_target_tier_thresholds(self, machine):
        table, __, cache = self.make_tiered(machine)
        tiers = cache.tiers
        cxl = tiers.hierarchy.get("cxl-far-memory")
        home = tiers.hierarchy.home
        breakeven = tier_pair_breakeven(cxl, home)
        assert tiers.target_tier(breakeven * 0.5) is cxl
        assert tiers.target_tier(breakeven) is cxl
        assert tiers.target_tier(breakeven * 1.01) is None
        assert tiers.target_tier(float("inf")) is None

    def test_evict_demotes_instead_of_dropping(self, machine):
        table, __, cache = self.make_tiered(machine)
        entry = self.warm_page(machine, table, cache)
        dram_before = machine.dram.bytes_for("page_cache")
        assert dram_before > 0
        cache.evict(entry)
        assert entry.state is None
        assert machine.dram.bytes_for("page_cache") == 0
        assert cache.stats.demotions == 1
        assert cache.tiers.holds(entry.page_id)
        assert cache.tiers.resident_bytes > 0
        assert cache.tiers.parked_pages("cxl-far-memory") == 1

    def test_cold_victim_still_drops(self, machine):
        """Past the tier breakeven even far memory's rent loses."""
        table, __, cache = self.make_tiered(machine)
        entry = make_page(table, cache, [Record(b"a", b"v" * 64)])
        cache.flush_page(entry)
        machine.clock.advance(1e7)
        cache.evict(entry)
        assert cache.stats.demotions == 0
        assert not cache.tiers.holds(entry.page_id)

    def test_fetch_promotes_with_zero_ios(self, machine):
        table, __, cache = self.make_tiered(machine)
        entry = self.warm_page(machine, table, cache)
        records = list(entry.state.base)
        cache.evict(entry)
        ios = cache.fetch(entry)
        assert ios == 0
        assert cache.stats.promotions == 1
        assert list(entry.state.base) == records
        assert not cache.tiers.holds(entry.page_id)
        assert cache.is_tracked(entry.page_id)
        assert machine.dram.bytes_for("page_cache") == entry.resident_bytes

    def test_blind_update_invalidates_parked_copy(self, machine):
        """A delta posted after the demote makes the copy stale: it is
        discarded, never merged, and the fetch pays real I/Os."""
        table, store, cache = self.make_tiered(machine)
        entry = self.warm_page(machine, table, cache)
        cache.evict(entry)
        store.flush()
        state = DataPageState(entry.page_id, base=None)
        state.base_flushed = True
        state.prepend_delta(up(b"a", b"new"))
        entry.state = state
        cache.register(entry)
        ios = cache.fetch(entry)
        assert ios >= 1
        assert cache.stats.stale_tier_copies == 1
        assert cache.stats.promotions == 0
        assert entry.state.lookup(b"a").value == b"new"

    def test_chain_change_invalidates_parked_copy(self, machine):
        """A GC-style relocation of the flash chain voids the snapshot."""
        table, store, cache = self.make_tiered(machine)
        entry = self.warm_page(machine, table, cache)
        cache.evict(entry)
        relocated = store.append(
            PageImage("full", entry.page_id,
                      records=(Record(b"a", b"moved"),))
        )
        entry.flash_chain = [relocated]
        store.flush()
        ios = cache.fetch(entry)
        assert ios >= 1
        assert cache.stats.stale_tier_copies == 1
        assert entry.state.lookup(b"a").value == b"moved"

    def test_tier_budget_fifo_overflow(self, machine):
        table, __, cache = self.make_tiered(
            machine, demote_budget_bytes=150)
        first = self.warm_page(machine, table, cache, key=b"a")
        second = self.warm_page(machine, table, cache, key=b"b")
        cache.evict(first)
        cache.evict(second)
        assert cache.stats.demotions == 2
        assert cache.stats.tier_drops == 1
        assert not cache.tiers.holds(first.page_id)
        assert cache.tiers.holds(second.page_id)
        assert cache.tiers.resident_bytes <= 150

    def test_discard_drops_parked_copy(self, machine):
        table, store, cache = self.make_tiered(machine)
        entry = self.warm_page(machine, table, cache)
        cache.evict(entry)
        store.flush()
        cache.tiers.discard(entry.page_id)
        assert not cache.tiers.holds(entry.page_id)
        assert cache.tiers.resident_bytes == 0
        ios = cache.fetch(entry)
        assert ios >= 1

    def test_nonpositive_budget_rejected(self, machine):
        table = MappingTable()
        store = LogStructuredStore(machine, segment_bytes=1 << 14)
        with pytest.raises(ValueError, match="budget"):
            PageCache(machine, table, store, demote_to_tiers=True,
                      demote_budget_bytes=0)

    def test_demote_charges_tier_copy_cpu(self, machine):
        table, __, cache = self.make_tiered(machine)
        entry = self.warm_page(machine, table, cache)
        before = machine.cpu.counters.get("cpu_us.tier_cache")
        cache.evict(entry)
        assert machine.cpu.counters.get("cpu_us.tier_cache") > before
