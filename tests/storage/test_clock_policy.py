"""CLOCK (second-chance) eviction: mechanics and parity with LRU."""

from repro.bwtree import BwTree, BwTreeConfig
from repro.hardware import Machine
from repro.storage import (
    EvictionPolicy,
    LogStructuredStore,
    MappingTable,
    PageCache,
    Record,
)
from repro.workloads import OpKind, WorkloadGenerator, WorkloadSpec


def clock_rig(machine: Machine, capacity_bytes):
    table = MappingTable()
    store = LogStructuredStore(machine, segment_bytes=1 << 14)
    cache = PageCache(machine, table, store, capacity_bytes=capacity_bytes,
                      policy=EvictionPolicy.CLOCK)
    return table, cache


def make_page(table, cache, index: int):
    entry = table.allocate()
    entry.state.install_base([Record(b"k%d" % index, b"v" * 300)])
    cache.register(entry)
    return entry


class TestClockMechanics:
    def test_all_referenced_pages_evict_in_hand_order(self, machine):
        # Every ref bit set: the sweep clears them all, then the hand's
        # front (the oldest registration) goes first — FIFO, like LRU.
        table, cache = clock_rig(machine, capacity_bytes=1200)
        entries = [make_page(table, cache, i) for i in range(4)]
        cache.ensure_capacity()
        assert cache.resident_bytes <= 1200
        assert entries[0].state is None
        assert all(e.state is not None for e in entries[1:])

    def test_touched_page_gets_a_second_chance(self, machine):
        table, cache = clock_rig(machine, capacity_bytes=1200)
        entries = [make_page(table, cache, i) for i in range(4)]
        cache.ensure_capacity()          # sweeps all bits, evicts page 0
        cache.touch(entries[1])          # re-reference the next victim
        entries.append(make_page(table, cache, 4))
        cache.ensure_capacity()
        # Page 1's set bit bought it a pass; page 2 went instead.
        assert entries[1].state is not None
        assert entries[2].state is None

    def test_touch_does_not_reorder_the_ring(self, machine):
        # The O(1) claim: a CLOCK touch flips a bit but never reorders,
        # so a page touched an instant ago is still evicted once its bit
        # is spent, whereas LRU would move it to the tail.
        table, cache = clock_rig(machine, capacity_bytes=1200)
        entries = [make_page(table, cache, i) for i in range(4)]
        for entry in entries:
            cache.touch(entry)
        cache.ensure_capacity()
        assert entries[0].state is None

    def test_protected_page_survives_full_sweep(self, machine):
        table, cache = clock_rig(machine, capacity_bytes=400)
        protected = make_page(table, cache, 0)
        other = make_page(table, cache, 1)
        cache.ensure_capacity(protect={protected.page_id})
        assert protected.state is not None
        assert other.state is None


class TestClockLruParity:
    def tree_for(self, policy: EvictionPolicy,
                 capacity_bytes: int) -> BwTree:
        machine = Machine.paper_default(cores=1)
        return BwTree(machine, BwTreeConfig(
            eviction_policy=policy,
            cache_capacity_bytes=capacity_bytes,
            segment_bytes=1 << 16,
        ))

    def test_sequential_scan_resident_sets_identical(self, machine):
        # One touch per page and no re-references: second chance and LRU
        # both degenerate to FIFO, so after a sequential pass the two
        # policies must keep exactly the same pages resident.
        resident_sets = {}
        for policy in (EvictionPolicy.LRU, EvictionPolicy.CLOCK):
            table = MappingTable()
            store = LogStructuredStore(machine, segment_bytes=1 << 14)
            cache = PageCache(machine, table, store, capacity_bytes=3000,
                              policy=policy)
            entries = []
            for index in range(12):
                entry = make_page(table, cache, index)
                entries.append(entry)
                cache.touch(entry)
                cache.ensure_capacity(protect={entry.page_id})
            resident_sets[policy] = {
                e.page_id for e in entries if cache.is_tracked(e.page_id)
            }
            assert 0 < len(resident_sets[policy]) < len(entries)
        assert (resident_sets[EvictionPolicy.LRU]
                == resident_sets[EvictionPolicy.CLOCK])

    def test_zipfian_hit_rate_within_two_points_of_lru(self):
        hit_rates = {}
        for policy in (EvictionPolicy.LRU, EvictionPolicy.CLOCK):
            tree = self.tree_for(policy, capacity_bytes=48 << 10)
            spec = WorkloadSpec.ycsb_b(record_count=2000)
            generator = WorkloadGenerator(spec)
            tree.bulk_load(generator.load_items())
            for op in generator.operations(4000):
                if op.kind is OpKind.READ:
                    tree.get(op.key)
                else:
                    tree.upsert(op.key, op.value)
            hit_rates[policy] = tree.cache.hit_rate()
        assert hit_rates[EvictionPolicy.LRU] > 0.3       # eviction ran
        assert abs(hit_rates[EvictionPolicy.CLOCK]
                   - hit_rates[EvictionPolicy.LRU]) <= 0.02

    def test_clock_hit_rate_accounting(self):
        tree = self.tree_for(EvictionPolicy.CLOCK, capacity_bytes=1 << 20)
        tree.bulk_load([(b"k%03d" % i, b"v") for i in range(50)])
        for i in range(50):
            tree.get(b"k%03d" % i)
        # Everything fits: no fetches, perfect hit rate.
        assert tree.cache.hit_rate() == 1.0
        assert tree.cache.stats.touches > 0
