"""The what-if causal profiler: prediction == actual, per contract.

The profiler's whole claim is that folding the recorded charge stream
*is* the scaled run where the scenario is linear, and stays within a
stated tolerance where it is not (docs/PROFILING.md).  Pinned here per
component on a sync single engine and a sync fleet (bit-exact), on the
device pseudo-components (float-assoc), on the deliberately nonlinear
shared-log-device case (queueing, error strictly between zero and the
tolerance), as a hypothesis property that a 1.0x "speedup" is a
bit-for-bit no-op, and on the CLI (deterministic byte-identical
output; dispatch through ``python -m repro``).
"""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.observability.whatif import (
    CONTRACT_EXACT,
    CONTRACT_FLOAT_ASSOC,
    CONTRACT_QUEUEING,
    DEVICE_LOG,
    DEVICE_SSD,
    QUEUEING_REL_TOL,
    WhatifConfig,
    _scenario_kwargs,
    available_components,
    check_agreement,
    contract_for,
    main,
    parse_speedup,
    predict,
    render_json,
    render_report,
    run_scenario,
    run_whatif,
    summarize,
)

SYNC_SINGLE = WhatifConfig(seed=11, mix="a", record_count=128,
                           op_count=400)
SYNC_FLEET = WhatifConfig(seed=11, mix="b", record_count=128,
                          op_count=400, shards=4)
#: The deliberately nonlinear scenario: two shards share one commit-log
#: drive and the epoch window is tiny (0.5us), so speeding the CPU up
#: shifts epoch boundaries and changes the device write count — a
#: linear fold cannot see that.
NONLINEAR = WhatifConfig(seed=7, mix="a", record_count=128, op_count=400,
                         shards=2, commit="async", log_topology="shared",
                         commit_interval_us=0.5)


def _validate(config: WhatifConfig, component: str, speedup: float = 2.0):
    """(predicted view, actual view, contract, agreement errors)."""
    baseline = run_scenario(config, record=True)
    predicted = predict(baseline, component, speedup)
    actual = run_scenario(config, **_scenario_kwargs(component, speedup))
    contract = contract_for(config, component)
    errors = check_agreement(predicted, actual, contract)
    return predicted, actual, contract, errors


class TestExactContract:
    """CPU components under sync commit: bit-identical, no tolerance."""

    def test_every_component_single_engine(self):
        baseline = run_scenario(SYNC_SINGLE, record=True)
        components = available_components(baseline)
        assert "bwtree" in components and "tc" in components
        for component in components:
            if component in (DEVICE_SSD, DEVICE_LOG):
                continue
            __, __, contract, errors = _validate(SYNC_SINGLE, component)
            assert contract == CONTRACT_EXACT
            # check_agreement already asserted bit-equality; the
            # reported errors must read exactly zero.
            assert errors["dollars_rel_err"] == 0.0
            assert errors["elapsed_rel_err"] == 0.0
            assert errors["core_seconds_rel_err"] == 0.0

    def test_every_component_sync_fleet(self):
        baseline = run_scenario(SYNC_FLEET, record=True)
        for component in available_components(baseline):
            if component in (DEVICE_SSD, DEVICE_LOG):
                continue
            __, __, contract, errors = _validate(SYNC_FLEET, component)
            assert contract == CONTRACT_EXACT
            assert errors["dollars_rel_err"] == 0.0

    def test_exact_means_full_summary_equality(self):
        predicted, actual, __, __ = _validate(SYNC_SINGLE, "bwtree")
        assert summarize(predicted) == summarize(actual)

    def test_speedup_below_one_is_a_slowdown_and_still_exact(self):
        predicted, actual, __, __ = _validate(SYNC_SINGLE, "bwtree", 0.5)
        p, a = summarize(predicted), summarize(actual)
        assert p == a
        base = summarize(run_scenario(SYNC_SINGLE))
        assert p.dollars_per_op > base.dollars_per_op


class TestDeviceContracts:
    def test_ssd_is_float_assoc_under_sync(self):
        predicted, actual, contract, errors = _validate(
            SYNC_SINGLE, DEVICE_SSD)
        assert contract == CONTRACT_FLOAT_ASSOC
        # CPU accounting and I/O counts are untouched by device scaling.
        assert summarize(predicted).core_seconds \
            == summarize(actual).core_seconds
        assert summarize(predicted).ssd_ios == summarize(actual).ssd_ios
        assert errors["ssd_ios_rel_err"] == 0.0

    def test_log_device_on_shared_topology(self):
        config = WhatifConfig(seed=7, mix="a", record_count=128,
                              op_count=400, shards=2, commit="async",
                              log_topology="shared")
        __, __, contract, errors = _validate(config, DEVICE_LOG)
        assert contract == CONTRACT_QUEUEING
        assert errors["dollars_rel_err"] <= QUEUEING_REL_TOL

    def test_log_device_absent_without_dedicated_drive(self):
        baseline = run_scenario(SYNC_SINGLE, record=True)
        assert DEVICE_LOG not in available_components(baseline)


class TestQueueingContract:
    def test_default_window_async_is_effectively_linear(self):
        """At the default 50us epoch window, boundary shifts do not
        change epoch counts — measured error is zero even though the
        contract stays ``queueing`` (linearity is not guaranteed)."""
        config = WhatifConfig(seed=11, mix="a", record_count=128,
                              op_count=400, shards=2, commit="async")
        __, __, contract, errors = _validate(config, "bwtree")
        assert contract == CONTRACT_QUEUEING
        assert errors["dollars_rel_err"] == 0.0

    def test_tiny_window_is_genuinely_nonlinear_but_within_tolerance(self):
        """The headline case: a 0.5us epoch window makes epoch counts
        clock-sensitive, so prediction and actual *must* disagree —
        and the disagreement must stay inside the documented
        tolerance.  A zero error here would mean the test lost its
        nonlinearity; above-tolerance means the contract is wrong."""
        __, __, contract, errors = _validate(NONLINEAR, "bwtree")
        assert contract == CONTRACT_QUEUEING
        err = errors["dollars_rel_err"]
        assert 0.0 < err <= QUEUEING_REL_TOL
        assert 0.0 < errors["elapsed_rel_err"] <= QUEUEING_REL_TOL

    def test_pathological_window_fails_loudly(self):
        """Past the documented envelope the tool must refuse to bless
        the prediction, not stretch the tolerance."""
        config = WhatifConfig(seed=7, mix="a", record_count=128,
                              op_count=800, shards=2, commit="async",
                              log_topology="shared",
                              commit_interval_us=1.0)
        baseline = run_scenario(config, record=True)
        predicted = predict(baseline, "bwtree", 8.0)
        actual = run_scenario(config,
                              **_scenario_kwargs("bwtree", 8.0))
        with pytest.raises(AssertionError, match="queueing contract"):
            check_agreement(predicted, actual, CONTRACT_QUEUEING)


class TestNoOpProperty:
    @settings(max_examples=12, deadline=None)
    @given(seed=st.integers(min_value=0, max_value=2**16),
           mix=st.sampled_from(["a", "b", "c"]),
           shards=st.sampled_from([1, 2]))
    def test_1x_speedup_is_bit_for_bit_noop(self, seed, mix, shards):
        """Scaling by 1.0 must not perturb a single bit — predicted
        *and* actual runs both equal the baseline exactly."""
        config = WhatifConfig(seed=seed, mix=mix, record_count=64,
                              op_count=160, shards=shards)
        baseline = run_scenario(config, record=True)
        for component in available_components(baseline):
            predicted = predict(baseline, component, 1.0)
            actual = run_scenario(
                config, **_scenario_kwargs(component, 1.0))
            base, p, a = (summarize(v)
                          for v in (baseline, predicted, actual))
            assert p == base
            assert a == base
            assert [s.busy_us for s in predicted.shards] \
                == [s.busy_us for s in baseline.shards]
            assert [s.busy_us for s in actual.shards] \
                == [s.busy_us for s in baseline.shards]


class TestRankingAndResult:
    def test_sweep_ranks_by_savings_and_validates_top(self):
        result = run_whatif(SYNC_SINGLE, speedup=2.0, validate="top")
        savings = [e["savings_dollars_per_op"]
                   for e in result["components"]]
        assert savings == sorted(savings, reverse=True)
        assert [e["rank"] for e in result["components"]] \
            == list(range(1, len(savings) + 1))
        assert len(result["validated"]) == 1
        top = result["components"][0]
        assert result["validated"][0]["component"] == top["component"]

    def test_unknown_component_is_rejected(self):
        with pytest.raises(ValueError, match="unknown component"):
            run_whatif(SYNC_SINGLE, components=["flux_capacitor"])

    def test_parse_speedup(self):
        assert parse_speedup("bwtree:2x") == ("bwtree", 2.0)
        assert parse_speedup("ssd:1.5") == ("ssd", 1.5)
        with pytest.raises(ValueError):
            parse_speedup("bwtree")
        with pytest.raises(ValueError):
            parse_speedup("bwtree:0x")


class TestCli:
    ARGS = ["--seed", "11", "--records", "64", "--ops", "160",
            "--speedup", "bwtree:2x"]

    def test_report_is_byte_identical_across_runs(self, tmp_path, capsys):
        outs = []
        for name in ("a.txt", "b.txt"):
            out = tmp_path / name
            assert main(self.ARGS + ["--out", str(out)]) == 0
            outs.append(out.read_bytes())
        assert outs[0] == outs[1]
        text = outs[0].decode()
        assert "rank component" in text
        assert "exact" in text
        assert "rel err 0.000e+00" in text

    def test_json_format_is_deterministic_and_validated(self, tmp_path):
        out = tmp_path / "whatif.json"
        assert main(self.ARGS + ["--format", "json",
                                 "--out", str(out)]) == 0
        import json as jsonlib

        doc = jsonlib.loads(out.read_bytes())
        assert doc["schema"] == 1
        assert doc["validated"][0]["component"] == "bwtree"
        assert doc["validated"][0]["agreement"]["dollars_rel_err"] == 0.0
        result = run_whatif(
            WhatifConfig(seed=11, mix="a", record_count=64, op_count=160),
            components=["bwtree"], speedup=2.0, validate="all")
        assert render_json(result).encode() == out.read_bytes()
        assert "top causal bottlenecks" not in render_json(result)
        assert "bwtree" in render_report(result)

    def test_sweep_and_speedup_are_mutually_exclusive(self, capsys):
        with pytest.raises(SystemExit) as excinfo:
            main(["--sweep", "--speedup", "bwtree:2x"])
        assert excinfo.value.code != 0

    def test_dispatch_through_python_m_repro(self, capsys):
        from repro.__main__ import main as repro_main

        assert repro_main(
            ["whatif", "--seed", "11", "--records", "64",
             "--ops", "160", "--speedup", "bwtree:2x"]) == 0
        out = capsys.readouterr().out
        assert "validated bwtree @2x" in out

    def test_smoke_passes(self):
        assert main(["--smoke"]) == 0
