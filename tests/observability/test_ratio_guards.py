"""Ratio accessors on empty accounting: 0.0, never ZeroDivisionError.

The repo-wide contract (documented in docs/ARCHITECTURE.md): every
rate/ratio accessor reads as zero before any traffic — except
``LogStructuredStore.utilization``, which reads 1.0 (an empty store is
fully live).  These pins keep the audit from regressing: a registry
snapshot of a freshly built engine exercises every gauge at once.
"""

from __future__ import annotations

from repro.deuteronomy.engine import DeuteronomyEngine
from repro.deuteronomy.tc import TcConfig
from repro.faults.retry import RetryStats
from repro.hardware.machine import Machine, RunSummary
from repro.hardware.metrics import Histogram
from repro.observability.registry import engine_registry, fleet_registry
from repro.sharding.engine import ShardedEngine
from repro.storage.cache import CacheStats


def test_retry_rate_on_no_attempts():
    assert RetryStats().retry_rate() == 0.0


def test_histogram_empty_reads_as_zero():
    histogram = Histogram("empty")
    assert histogram.count == 0
    assert histogram.mean == 0.0
    assert histogram.minimum == 0.0
    assert histogram.maximum == 0.0
    assert histogram.percentile(50) == 0.0
    assert histogram.percentile(99) == 0.0


def test_run_summary_with_zero_operations():
    summary = RunSummary(
        operations=0, cpu_busy_seconds=0.0, ssd_busy_seconds=0.0,
        cores=4, ssd_ios=0.0)
    assert summary.throughput_ops_per_sec == 0.0
    assert summary.core_us_per_op == 0.0
    assert summary.ios_per_op == 0.0


def test_fresh_engine_ratio_accessors():
    machine = Machine.paper_default(cores=2)
    engine = DeuteronomyEngine(
        machine, tc_config=TcConfig(sync_commit=True))
    assert engine.tc.tc_hit_rate() == 0.0
    assert engine.tc.read_cache.hit_rate() == 0.0
    # Building the engine itself touches the page cache once (the root
    # page), so zero the stats to reach the untouched-division branch.
    engine.dc.cache.stats = CacheStats()
    assert engine.dc.cache.hit_rate() == 0.0
    assert engine.tc.log.retry_stats.retry_rate() == 0.0
    assert engine.dc.store.retry_stats.retry_rate() == 0.0
    # Nothing flushed yet: the store is all live bytes by definition.
    assert engine.dc.store.utilization() == 1.0


def test_fresh_engine_registry_snapshot_has_no_division_errors():
    machine = Machine.paper_default(cores=2)
    engine = DeuteronomyEngine(
        machine, tc_config=TcConfig(sync_commit=True))
    engine.dc.cache.stats = CacheStats()
    snapshot = engine_registry(engine).snapshot()
    gauges = snapshot["gauges"]
    assert gauges["tc.hit_rate"] == 0.0
    assert gauges["read_cache.hit_rate"] == 0.0
    assert gauges["page_cache.hit_rate"] == 0.0
    assert gauges["recovery_log.retry_rate"] == 0.0
    assert gauges["log_store.retry_rate"] == 0.0
    assert gauges["log_store.utilization"] == 1.0
    histograms = snapshot["histograms"]
    assert histograms["machine.op_latency_us"]["count"] == 0.0
    assert histograms["machine.op_latency_us"]["p99"] == 0.0


def test_fresh_fleet_rates_read_as_zero():
    fleet = ShardedEngine(
        2, cores_per_shard=2, tc_config=TcConfig(sync_commit=True))
    stats = fleet.stats()["fleet"]
    assert stats["tc_hit_rate"] == 0.0
    assert stats["read_cache_hit_rate"] == 0.0
    # Shard construction touches each page cache once (the root page);
    # the rate is well-defined, not a division error.
    assert 0.0 <= stats["page_cache_hit_rate"] <= 1.0
    registry = fleet_registry(fleet)
    assert registry.snapshot()["gauges"]["fleet.tc_hit_rate"] == 0.0
