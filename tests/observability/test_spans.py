"""Unit tests for trace spans: both tracer modes, exact attribution.

The default tracer records scalar snapshots in a flat event log and
materializes the span tree lazily; the detailed tracer builds the tree
live and buckets every CPU charge by category.  Both must attribute the
same machine accounting — these tests drive the hardware models
directly so every expected number is known in closed form.
"""

from __future__ import annotations

import json

import pytest

from repro.hardware.machine import Machine
from repro.observability.spans import (
    COMPONENT_OF_CATEGORY,
    SPAN_NAMES,
    Span,
    Tracer,
    export_chrome,
    export_json,
)


def _attach(machine: Machine, detailed: bool = False) -> Tracer:
    machine.reset_accounting()
    tracer = Tracer(machine, detailed=detailed)
    machine.attach_tracer(tracer)
    return tracer


class TestUntraced:
    def test_trace_span_is_a_shared_noop(self, machine):
        first = machine.trace_span("engine.get", "engine")
        second = machine.trace_span("bwtree.get", "bwtree")
        assert first is second  # the stateless nullcontext singleton
        with first:
            machine.cpu.charge_us(1.0, "bwtree")
        assert machine.cpu.busy_us == 1.0

    def test_detach_restores_noop_and_clears_sink(self, machine):
        tracer = _attach(machine, detailed=True)
        assert machine.cpu.sink is tracer
        machine.detach_tracer()
        assert machine.tracer is None
        assert machine.cpu.sink is None
        with machine.trace_span("engine.get", "engine"):
            pass
        assert tracer.roots == []


class TestDefaultMode:
    def test_nested_attribution_from_the_flat_log(self, machine):
        tracer = _attach(machine)
        assert machine.cpu.sink is None  # default mode pays no per-charge
        with machine.trace_span("engine.get", "engine"):
            machine.cpu.charge_us(2.0, "tc")
            with machine.trace_span("bwtree.get", "bwtree"):
                machine.cpu.charge_us(3.0, "bwtree")
                machine.ssd.read(4096)
            machine.cpu.charge_us(1.0, "tc")

        roots = tracer.roots
        assert len(roots) == 1
        root = roots[0]
        assert (root.name, root.component) == ("engine.get", "engine")
        assert len(root.children) == 1
        child = root.children[0]
        assert (child.name, child.component) == ("bwtree.get", "bwtree")

        assert root.subtree_cpu_us == 6.0
        assert child.subtree_cpu_us == 3.0
        assert root.self_cpu_us() == 3.0
        assert child.self_cpu_us() == 3.0
        assert (root.ssd_ios, child.ssd_ios) == (1, 1)
        assert root.self_ssd_ios() == 0
        assert child.service_us > 0.0
        assert root.service_us == child.service_us
        assert root.begin_s <= child.begin_s <= child.end_s <= root.end_s

    def test_rematerializes_when_more_spans_arrive(self, machine):
        tracer = _attach(machine)
        with machine.trace_span("engine.get", "engine"):
            machine.cpu.charge_us(1.0, "bwtree")
        assert len(tracer.roots) == 1
        with machine.trace_span("engine.put", "engine"):
            machine.cpu.charge_us(2.0, "bwtree")
        assert [root.name for root in tracer.roots] == [
            "engine.get", "engine.put",
        ]
        # Cached until the log grows again.
        assert tracer.roots is tracer.roots

    def test_handle_is_reused_across_spans(self, machine):
        tracer = _attach(machine)
        first = machine.trace_span("engine.get", "engine")
        with first:
            pass
        second = machine.trace_span("engine.put", "engine")
        assert first is second is tracer._handle

    def test_span_notes_survive_materialization(self, machine):
        tracer = _attach(machine)
        with tracer.span("tc.commit_batch", "tc", batch=4, sync=True):
            machine.cpu.charge_us(1.0, "tc")
        root = tracer.roots[0]
        assert root.notes == {"batch": 4, "sync": True}
        # machine.trace_span sites carry no notes: empty dict, not None.
        with machine.trace_span("engine.get", "engine"):
            pass
        assert tracer.roots[1].notes == {}

    def test_no_category_buckets_in_default_mode(self, machine):
        tracer = _attach(machine)
        with machine.trace_span("engine.get", "engine"):
            machine.cpu.charge_us(5.0, "bwtree")
        assert tracer.roots[0].cpu_us == {}
        assert tracer.unattributed == {}


class TestDetailedMode:
    def test_per_span_category_buckets(self, machine):
        tracer = _attach(machine, detailed=True)
        assert machine.cpu.sink is tracer
        machine.cpu.charge_us(0.5, "router")  # before any span opens
        with machine.trace_span("engine.get", "engine"):
            machine.cpu.charge_us(2.0, "tc")
            with machine.trace_span("bwtree.get", "bwtree"):
                machine.cpu.charge_us(3.0, "bwtree")
            machine.cpu.charge_us(1.0, "tc_mvcc")
        root = tracer.roots[0]
        assert root.cpu_us == {"tc": 2.0, "tc_mvcc": 1.0}
        assert root.children[0].cpu_us == {"bwtree": 3.0}
        assert tracer.unattributed == {"router": 0.5}
        assert tracer.unattributed_us() == pytest.approx(0.5)

    def test_stack_corruption_is_an_assertion(self, machine):
        tracer = _attach(machine, detailed=True)
        outer = tracer.span("engine.get", "engine")
        inner = tracer.span("tc.read", "tc")
        outer.__enter__()
        inner.__enter__()
        with pytest.raises(AssertionError, match="span stack corruption"):
            outer.__exit__(None, None, None)

    def test_note_after_open(self, machine):
        tracer = _attach(machine, detailed=True)
        with tracer.span("page_cache.fetch", "page_cache") as span:
            assert isinstance(span, Span)
            span.note("outcome", "miss")
        assert tracer.roots[0].notes == {"outcome": "miss"}


class TestReconciliationViews:
    def test_totals_match_machine_counters_bitwise(self, machine):
        tracer = _attach(machine)
        with machine.trace_span("engine.get", "engine"):
            machine.cpu.charge_us(2.5, "tc")
            machine.cpu.charge_us(1.5, "tc_log")
        machine.cpu.charge_us(0.5, "router")  # outside every span
        assert tracer.totals() == {
            "tc": 2.5, "tc_log": 1.5, "router": 0.5,
        }
        assert tracer.total_us == machine.cpu.busy_us
        assert tracer.total_core_seconds() == \
            machine.summary().cpu_busy_seconds
        assert tracer.unattributed_us() == pytest.approx(0.5)

    def test_cpu_us_by_component_uses_the_category_map(self, machine):
        tracer = _attach(machine)
        machine.cpu.charge_us(1.0, "tc_log")
        machine.cpu.charge_us(2.0, "tc_mvcc")
        machine.cpu.charge_us(4.0, "unknown_category")
        grouped = tracer.cpu_us_by_component()
        assert grouped == {
            "recovery_log": 1.0, "tc": 2.0, "unknown_category": 4.0,
        }
        assert COMPONENT_OF_CATEGORY["tc_log"] == "recovery_log"

    def test_ssd_ios_by_component_reports_unattributed(self, machine):
        tracer = _attach(machine)
        with machine.trace_span("log_store.read", "log_store"):
            machine.ssd.read(4096)
        machine.ssd.write(4096)  # no span open
        assert tracer.traced_ssd_ios() == 2
        assert tracer.ssd_ios_by_component() == {
            "log_store": 1, "unattributed": 1,
        }

    def test_attach_baseline_excludes_prior_work(self, machine):
        machine.cpu.charge_us(100.0, "bwtree")
        machine.ssd.read(4096)
        tracer = Tracer(machine)  # attached without a reset
        machine.attach_tracer(tracer)
        machine.cpu.charge_us(3.0, "bwtree")
        assert tracer.total_us == 3.0
        assert tracer.traced_ssd_ios() == 0
        assert tracer.totals() == {"bwtree": 3.0}


class TestSpanNames:
    def test_known_names_are_dotted_component_verbs(self):
        assert SPAN_NAMES
        components = {name.split(".", 1)[0] for name in SPAN_NAMES}
        assert components == {
            "engine", "tc", "record_cache", "recovery_log",
            "commit_pipeline", "bwtree", "page_cache", "tier_cache",
            "log_store", "shard",
        }


class TestExports:
    def _traced_machine(self) -> Machine:
        machine = Machine.paper_default(cores=2)
        tracer = _attach(machine)
        for index in range(3):
            with tracer.span("engine.get", "engine", op=index):
                machine.cpu.charge_us(1.0 + index, "bwtree")
        return machine

    def test_json_export_is_deterministic_and_caps_roots(self):
        machine = self._traced_machine()
        tracer = machine.tracer
        config = {"seed": 7}
        first = export_json([tracer], config)
        assert first == export_json([tracer], config)
        assert first.endswith("\n")
        doc = json.loads(first)
        assert doc["kind"] == "repro-trace"
        shard = doc["shards"][0]
        assert shard["roots_total"] == shard["roots_exported"] == 3
        assert shard["total_us"] == 6.0
        capped = json.loads(export_json([tracer], config, max_roots=1))
        capped_shard = capped["shards"][0]
        assert capped_shard["roots_exported"] == 1
        assert capped_shard["roots_total"] == 3
        # Totals still cover the whole run despite the cap.
        assert capped_shard["total_us"] == 6.0

    def test_chrome_export_emits_complete_events(self):
        machine = self._traced_machine()
        doc = json.loads(export_chrome([machine.tracer]))
        events = doc["traceEvents"]
        assert len(events) == 3
        assert {event["ph"] for event in events} == {"X"}
        assert {event["pid"] for event in events} == {0}
        assert events[0]["args"]["notes"] == {"op": 0}

    def test_span_to_dict_and_render(self):
        machine = self._traced_machine()
        root = machine.tracer.roots[0]
        as_dict = root.to_dict()
        assert as_dict["name"] == "engine.get"
        assert as_dict["self_cpu_us"] == as_dict["subtree_cpu_us"] == 1.0
        assert as_dict["children"] == []
        assert "engine.get" in root.render()
