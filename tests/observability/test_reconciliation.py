"""The exactness contract: traced costs reconcile with ``stats()``.

Core-seconds and device I/Os must match *bit-for-bit* (both sides are
scalar differences against an attach-time baseline of exactly zero);
per-span windows partition the totals at fsum tolerance.  Pinned here
on real YCSB replays (single engine and a 4-shard fleet), on the cheap
default tracer, and as a hypothesis property over random op sequences.
"""

from __future__ import annotations

import math

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.deuteronomy.engine import DeuteronomyEngine
from repro.deuteronomy.tc import TcConfig
from repro.hardware.machine import Machine
from repro.observability.spans import SPAN_NAMES, Span, Tracer
from repro.observability.trace_cli import (
    FSUM_REL_TOL,
    run_traced,
    verify_reconciliation,
)


def _spans(tracer: Tracer):
    def walk(span: Span):
        yield span
        for child in span.children:
            yield from walk(child)

    for root in tracer.roots:
        yield from walk(root)


@pytest.mark.parametrize(
    "mix,shards,batch",
    [("a", 1, 0), ("b", 1, 8), ("c", 1, 0), ("a", 4, 16)],
)
def test_traced_replay_reconciles_exactly(mix, shards, batch):
    tracers, stats, metrics = run_traced(
        seed=11, mix=mix, record_count=64, op_count=160,
        shards=shards, batch_size=batch)
    summary = verify_reconciliation(tracers, stats)
    assert summary["core_seconds_exact"] is True
    assert summary["ssd_ios_exact"] is True

    target = stats["fleet"] if "fleet" in stats else stats
    traced_core = [t.total_core_seconds() for t in tracers]
    traced = sum(traced_core) if "fleet" in stats else traced_core[0]
    assert traced == target["core_seconds"]  # bit-identical, not approx
    assert sum(t.traced_ssd_ios() for t in tracers) == target["ssd_ios"]

    names = {span.name for t in tracers for span in _spans(t)}
    assert names, "traced replay emitted no spans"
    assert names <= SPAN_NAMES  # docs cite this closed set

    counters = metrics["counters"]
    assert isinstance(counters, dict) and counters


def test_default_mode_tracer_reconciles_too():
    machine = Machine.paper_default(cores=2)
    engine = DeuteronomyEngine(
        machine, tc_config=TcConfig(sync_commit=True))
    engine.dc.bulk_load(
        [(b"k%03d" % index, b"v" * 16) for index in range(32)])
    machine.reset_accounting()
    tracer = Tracer(machine)  # default: flat event log, no charge sink
    machine.attach_tracer(tracer)
    assert machine.cpu.sink is None

    for index in range(80):
        key = b"k%03d" % (index % 32)
        if index % 3:
            engine.get(key)
        else:
            engine.put(key, b"w" * 16)

    stats = engine.stats()
    verify_reconciliation([tracer], stats)
    assert tracer.total_core_seconds() == stats["core_seconds"]
    assert tracer.traced_ssd_ios() == stats["ssd_ios"]
    assert math.isclose(
        tracer.span_cpu_us(), tracer.root_cpu_us(),
        rel_tol=FSUM_REL_TOL, abs_tol=1e-9)
    # Engine facade spans cover all charged work: nothing unattributed.
    assert abs(tracer.unattributed_us()) <= \
        tracer.total_us * FSUM_REL_TOL + 1e-9


def test_fleet_tracers_attach_per_shard_machine():
    tracers, stats, __ = run_traced(
        seed=3, mix="a", record_count=48, op_count=96,
        shards=3, batch_size=12)
    assert len(tracers) == 3
    machines = {id(t.machine) for t in tracers}
    assert len(machines) == 3
    per_shard = stats["per_shard"]
    for tracer, shard_stats in zip(tracers, per_shard):
        assert tracer.total_core_seconds() == \
            shard_stats["core_seconds"]
        assert tracer.traced_ssd_ios() == shard_stats["ssd_ios"]


@settings(max_examples=25, deadline=None)
@given(
    ops=st.lists(
        st.tuples(st.booleans(), st.integers(0, 15)),
        min_size=1, max_size=40,
    )
)
def test_random_op_traces_reconcile(ops):
    """Property: any op sequence leaves the tracer and stats() agreeing."""
    machine = Machine.paper_default(cores=1)
    engine = DeuteronomyEngine(
        machine, tc_config=TcConfig(sync_commit=True))
    engine.dc.bulk_load(
        [(b"k%02d" % index, b"v" * 8) for index in range(16)])
    machine.reset_accounting()
    tracer = Tracer(machine, detailed=True)
    machine.attach_tracer(tracer)

    for is_read, index in ops:
        key = b"k%02d" % index
        if is_read:
            engine.get(key)
        else:
            engine.put(key, b"w" * 8)

    stats = engine.stats()
    verify_reconciliation([tracer], stats)
    assert tracer.total_core_seconds() == stats["core_seconds"]
    assert len(tracer.roots) == len(ops)
