"""``python -m repro trace``: determinism, formats, the dollar report."""

from __future__ import annotations

import json

import pytest

from repro.observability import trace_cli

BASE = ["--seed", "5", "--records", "64", "--ops", "150"]


def _run(tmp_path, name, extra):
    out = tmp_path / name
    assert trace_cli.main(BASE + extra + ["--out", str(out)]) == 0
    return out.read_bytes()


def test_json_export_is_byte_identical_across_runs(tmp_path):
    first = _run(tmp_path, "a.json", ["--format", "json"])
    second = _run(tmp_path, "b.json", ["--format", "json"])
    assert first == second

    doc = json.loads(first)
    assert doc["kind"] == "repro-trace"
    assert doc["schema"] == 1
    assert doc["config"]["seed"] == 5
    reconciliation = doc["config"]["reconciliation"]
    assert reconciliation["core_seconds_exact"] is True
    assert reconciliation["ssd_ios_exact"] is True
    assert doc["config"]["metrics_delta"]["counters"]
    shard = doc["shards"][0]
    assert shard["detailed"] is True
    assert 0 < shard["roots_exported"] <= shard["roots_total"]
    assert shard["spans"][0]["name"].startswith("engine.")


def test_chrome_export_renders_complete_events(tmp_path):
    raw = _run(tmp_path, "trace.chrome.json", ["--format", "chrome"])
    doc = json.loads(raw)
    events = doc["traceEvents"]
    assert events
    assert all(event["ph"] == "X" for event in events)
    assert all("self_cpu_us" in event["args"] for event in events)


def test_report_cites_the_paper_equations(tmp_path):
    text = _run(tmp_path, "report.txt", ["--format", "report"]).decode()
    assert "$ per op by component" in text
    assert "Eq. (4)  $MM = Ps*($M + $Fl) + N*$P/ROPS" in text
    assert "Eq. (5)  $SS = Ps*$Fl + N*($I/IOPS + R*$P/ROPS)" in text
    assert "execution term ($P/ROPS)" in text
    assert "I/O term ($I/IOPS)" in text
    assert "DRAM rent (the Ps*$M storage term)" in text
    assert "reconciles with stats()" in text
    assert "bwtree" in text


def test_fleet_report_labels_the_shard_count(tmp_path):
    text = _run(
        tmp_path, "fleet.txt",
        ["--shards", "2", "--batch-size", "16", "--format", "report"],
    ).decode()
    assert "fleet of 2 shards" in text


def test_tree_format_prints_cost_trees(tmp_path):
    text = _run(tmp_path, "trees.txt", ["--format", "tree"]).decode()
    assert "engine." in text
    assert "cpu=" in text and "ios=" in text


def test_max_roots_caps_export_but_not_totals(tmp_path):
    capped = json.loads(_run(
        tmp_path, "capped.json", ["--format", "json", "--max-roots", "3"]))
    shard = capped["shards"][0]
    assert shard["roots_exported"] == 3
    assert shard["roots_total"] > 3
    assert shard["total_us"] > 0.0


def test_smoke_mode_self_verifies(capsys):
    assert trace_cli.main(["--smoke"]) == 0
    out = capsys.readouterr().out
    assert "trace smoke: OK" in out


def test_invalid_shard_count_is_a_usage_error():
    with pytest.raises(SystemExit):
        trace_cli.main(["--shards", "0"])
