"""Metrics registry: validation, snapshot/delta, fleet additivity."""

from __future__ import annotations

import pytest

from repro.deuteronomy.engine import DeuteronomyEngine
from repro.deuteronomy.tc import TcConfig
from repro.hardware.machine import Machine
from repro.hardware.metrics import Histogram
from repro.observability.registry import (
    _REGISTRY_ADDITIVE_KEYS,
    MetricsRegistry,
    engine_registry,
    fleet_registry,
)
from repro.sharding.engine import ShardedEngine


def _items(count: int, width: int = 16):
    return [(b"k%04d" % index, b"v" * width) for index in range(count)]


def _small_engine(ops: int = 48) -> DeuteronomyEngine:
    machine = Machine.paper_default(cores=2)
    engine = DeuteronomyEngine(
        machine, tc_config=TcConfig(sync_commit=True))
    engine.dc.bulk_load(_items(32))
    machine.reset_accounting()
    for index in range(ops):
        key = b"k%04d" % (index % 32)
        if index % 3:
            engine.get(key)
        else:
            engine.put(key, b"w" * 16)
    return engine


class TestMetricsRegistry:
    def test_names_must_be_component_dotted(self):
        registry = MetricsRegistry()
        with pytest.raises(ValueError, match="component.metric"):
            registry.register_counter("ops", lambda: 0.0)
        with pytest.raises(ValueError, match="component.metric"):
            registry.register_gauge("", lambda: 0.0)

    def test_duplicates_rejected_across_kinds(self):
        registry = MetricsRegistry()
        registry.register_counter("tc.commits", lambda: 1.0)
        with pytest.raises(ValueError, match="already registered"):
            registry.register_gauge("tc.commits", lambda: 0.0)
        with pytest.raises(ValueError, match="already registered"):
            registry.register_histogram(
                "tc.commits", lambda: Histogram("x"))

    def test_names_lists_every_kind_sorted(self):
        registry = MetricsRegistry()
        registry.register_gauge("b.level", lambda: 0.0)
        registry.register_counter("a.count", lambda: 0.0)
        registry.register_histogram("c.lat", lambda: Histogram("x"))
        assert registry.names == ["a.count", "b.level", "c.lat"]

    def test_snapshot_and_delta(self):
        state = {"count": 2.0, "level": 7.0}
        hist = Histogram("lat")
        hist.observe_many([1.0, 3.0])
        registry = MetricsRegistry()
        registry.register_counter("c.count", lambda: state["count"])
        registry.register_gauge("c.level", lambda: state["level"])
        registry.register_histogram("c.lat", lambda: hist)

        before = registry.snapshot()
        assert before["counters"] == {"c.count": 2.0}
        assert before["gauges"] == {"c.level": 7.0}
        lat = before["histograms"]["c.lat"]
        assert lat["count"] == 2.0 and lat["mean"] == 2.0

        state["count"] = 5.0
        state["level"] = 1.0
        delta = registry.delta(before)
        # Counters difference; gauges read at the end of the window.
        assert delta["counters"] == {"c.count": 3.0}
        assert delta["gauges"] == {"c.level": 1.0}

    def test_delta_tolerates_new_counters(self):
        registry = MetricsRegistry()
        registry.register_counter("c.count", lambda: 4.0)
        delta = registry.delta({"counters": {}})
        assert delta["counters"] == {"c.count": 4.0}


class TestEngineRegistry:
    def test_counters_read_live_engine_accounting(self):
        engine = _small_engine()
        registry = engine_registry(engine)
        stats = engine.stats()
        snapshot = registry.snapshot()
        counters = snapshot["counters"]
        assert counters["machine.operations"] == stats["operations"]
        assert counters["machine.ssd_ios"] == stats["ssd_ios"]
        assert counters["tc.commits"] == stats["commits"]
        assert counters["tc.reads"] == stats["reads"]
        assert counters["page_cache.fetches"] == \
            stats["page_cache_fetches"]
        assert counters["recovery_log.flushes"] == stats["log_flushes"]
        latency = snapshot["histograms"]["machine.op_latency_us"]
        assert latency["count"] == \
            float(engine.machine.op_latencies.count)
        assert latency["count"] > 0.0
        assert 0.0 <= snapshot["gauges"]["tc.hit_rate"] <= 1.0

    def test_delta_over_a_measured_window(self):
        engine = _small_engine(ops=12)
        registry = engine_registry(engine)
        before = registry.snapshot()
        for index in range(10):
            engine.get(b"k%04d" % (index % 32))
        delta = registry.delta(before)
        assert delta["counters"]["machine.operations"] == 10.0
        assert delta["counters"]["tc.reads"] == 10.0


class TestFleetRegistry:
    def test_sums_match_per_shard_stats(self):
        fleet = ShardedEngine(
            2, cores_per_shard=2,
            tc_config=TcConfig(sync_commit=True))
        fleet.bulk_load(_items(48))
        fleet.reset_accounting()
        batch = [
            ("put", key, b"w" * 16) if index % 4 == 0
            else ("get", key, None)
            for index, (key, __) in enumerate(_items(48))
        ]
        fleet.apply_batch(batch)

        registry = fleet_registry(fleet)
        counters = registry.snapshot()["counters"]
        fleet_stats = fleet.stats()
        for key in _REGISTRY_ADDITIVE_KEYS:
            expected = sum(
                shard.stats()[key] for shard in fleet.shards)
            assert counters[f"fleet.{key}"] == float(expected), key
            assert counters[f"fleet.{key}"] == \
                float(fleet_stats["fleet"][key]), key
        assert counters["fleet.routed_ops"] == \
            float(fleet_stats["routed_ops"])
        assert counters["fleet.routed_batches"] == \
            float(fleet_stats["routed_batches"])

    def test_fleet_hit_rate_rederived_from_sums(self):
        fleet = ShardedEngine(
            2, cores_per_shard=2,
            tc_config=TcConfig(sync_commit=True))
        registry = fleet_registry(fleet)
        # Empty fleet: 0.0, never a ZeroDivisionError.
        assert registry.snapshot()["gauges"]["fleet.tc_hit_rate"] == 0.0
        fleet.bulk_load(_items(32))
        fleet.reset_accounting()
        fleet.apply_batch([("get", key, None) for key, __ in _items(32)])
        rate = registry.snapshot()["gauges"]["fleet.tc_hit_rate"]
        assert rate == fleet.stats()["fleet"]["tc_hit_rate"]
