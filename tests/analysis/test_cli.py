"""CLI behaviour and the self-run gate: the repo must lint clean."""

from __future__ import annotations

import json
import os

import pytest

import repro
from repro.analysis.cli import main as lint_main
from repro.analysis.core import rule_ids

PACKAGE_DIR = os.path.dirname(os.path.abspath(repro.__file__))

DIRTY = """\
import time


def stamp():
    return time.time()
"""


def test_repo_is_lint_clean(capsys):
    """The acceptance gate: ``python -m repro lint`` exits 0 here."""
    assert lint_main([]) == 0
    assert capsys.readouterr().out == ""


def test_default_paths_cover_the_package(capsys):
    assert lint_main([PACKAGE_DIR]) == 0


def test_findings_exit_nonzero_with_location(tmp_path, capsys):
    target = tmp_path / "dirty.py"
    target.write_text(DIRTY)
    assert lint_main([str(tmp_path)]) == 1
    out = capsys.readouterr().out
    assert f"{target}:5:" in out
    assert "[determinism]" in out
    assert "1 finding" in out


def test_json_format(tmp_path, capsys):
    (tmp_path / "dirty.py").write_text(DIRTY)
    assert lint_main(["--format", "json", str(tmp_path)]) == 1
    payload = json.loads(capsys.readouterr().out)
    assert len(payload) == 1
    assert payload[0]["rule"] == "determinism"
    assert payload[0]["line"] == 5


def test_select_restricts_rules(tmp_path, capsys):
    (tmp_path / "dirty.py").write_text(DIRTY)
    assert lint_main(
        ["--select", "mutable-default", str(tmp_path)]
    ) == 0


def test_select_unknown_rule_is_an_error(tmp_path):
    with pytest.raises(SystemExit) as excinfo:
        lint_main(["--select", "no-such-rule", str(tmp_path)])
    assert excinfo.value.code == 2


def test_missing_path_is_an_error(tmp_path):
    with pytest.raises(SystemExit) as excinfo:
        lint_main([str(tmp_path / "nope")])
    assert excinfo.value.code == 2


def test_module_entrypoint_dispatches(tmp_path, capsys):
    from repro.__main__ import main as repro_main

    (tmp_path / "dirty.py").write_text(DIRTY)
    assert repro_main(["lint", str(tmp_path)]) == 1
    assert "[determinism]" in capsys.readouterr().out


def test_registered_rule_ids_are_stable():
    assert set(rule_ids()) == {
        "cost-accounting",
        "determinism",
        "slots-dataclass",
        "mutable-default",
        "counter-additivity",
        "wal-ordering",
        "epoch-discipline",
        "fault-site-coverage",
        "shard-isolation",
    }


def test_empty_select_is_an_error(tmp_path):
    """``--select ""`` / ``--select ,`` used to silently run zero rules
    and exit 0; it must be a usage error naming the valid ids."""
    (tmp_path / "dirty.py").write_text(DIRTY)
    for empty in ("", ","):
        with pytest.raises(SystemExit) as excinfo:
            lint_main(["--select", empty, str(tmp_path)])
        assert excinfo.value.code == 2


def test_threaded_faults_guard():
    """Pin for the shard-isolation fix: the fleet fault injector is
    unsynchronized, so threaded dispatch must refuse it up front."""
    from repro.faults.plan import FaultInjector, FaultPlan
    from repro.sharding.engine import ShardedEngine

    injector = FaultInjector(plan=FaultPlan(rules=()))
    with pytest.raises(ValueError, match="sequential dispatch"):
        ShardedEngine(num_shards=2, threaded=True, faults=injector)
