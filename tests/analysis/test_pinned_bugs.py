"""Pinning tests for the accounting bugs the linter surfaced.

Each test locks in a fix for a real ``cost-accounting`` finding from
the first run of ``python -m repro lint`` over this repository:

* ``BwTree.scan`` yielded records without the per-operation dispatch +
  epoch charges every other public op pays via ``_begin_op``;
* the delta-only drop paths in ``PageCache.ensure_capacity`` and
  ``PageCache.evict_idle_pages`` performed an eviction without the
  ``evict_bookkeeping`` CPU that ``PageCache.evict`` charges.
"""

from __future__ import annotations

import pytest

from repro.storage import (
    DeltaKind,
    EvictionPolicy,
    LogStructuredStore,
    MappingTable,
    PageCache,
    Record,
    RecordDelta,
)


def _cache_cpu_us(machine) -> float:
    return machine.cpu.counters.get("cpu_us.cache")


def _delta_only_rig(machine, **cache_kwargs):
    """A record-cache PageCache holding one delta-only resident page."""
    table = MappingTable()
    store = LogStructuredStore(machine, segment_bytes=1 << 14)
    cache = PageCache(machine, table, store, record_cache=True,
                      **cache_kwargs)
    entry = table.allocate()
    entry.state.install_base([Record(b"a", b"v" * 200)])
    cache.register(entry)
    cache.flush_page(entry)
    entry.state.prepend_delta(
        RecordDelta(DeltaKind.UPSERT, b"b", b"w" * 200, 1)
    )
    cache.resize(entry)
    cache.evict(entry)   # retains the deltas, drops the base
    assert entry.state is not None and not entry.state.base_present
    return cache, entry


class TestScanChargesDispatch:
    def test_scan_charges_like_a_point_read(self, small_tree):
        machine = small_tree.machine
        for index in range(50):
            small_tree.upsert(b"key%05d" % index, b"v" * 40)
        costs = machine.cpu.costs
        before = machine.cpu.counters.get("cpu_us.bwtree")
        results = list(small_tree.scan(b"key"))
        charged = machine.cpu.counters.get("cpu_us.bwtree") - before
        assert len(results) == 50
        # At least one leaf visit: one dispatch + one epoch charge, on
        # top of the per-byte copy work.
        assert charged >= costs.op_dispatch + costs.epoch_protect

    def test_empty_scan_charges_nothing_extra(self, small_tree):
        machine = small_tree.machine
        small_tree.upsert(b"aaa", b"v")
        before = machine.cpu.counters.get("cpu_us.bwtree")
        assert list(small_tree.scan(b"zzz")) == []
        charged = machine.cpu.counters.get("cpu_us.bwtree") - before
        # Visiting the (single) rightmost leaf still dispatches once.
        assert charged >= machine.cpu.costs.op_dispatch


class TestDeltaDropChargesEviction:
    def test_evict_idle_pages_charges_bookkeeping(self, machine):
        cache, entry = _delta_only_rig(
            machine,
            policy=EvictionPolicy.TI_THRESHOLD,
            ti_seconds=45.0,
        )
        machine.clock.advance(100.0)
        before = _cache_cpu_us(machine)
        evictions_before = cache.stats.evictions
        assert cache.evict_idle_pages() == 1
        assert entry.state is None
        assert cache.stats.evictions == evictions_before + 1
        charged = _cache_cpu_us(machine) - before
        assert charged == pytest.approx(
            machine.cpu.costs.evict_bookkeeping
        )

    def test_ensure_capacity_charges_bookkeeping(self, machine):
        cache, entry = _delta_only_rig(machine, capacity_bytes=64)
        before = _cache_cpu_us(machine)
        assert cache.ensure_capacity() == 1
        assert entry.state is None
        charged = _cache_cpu_us(machine) - before
        assert charged == pytest.approx(
            machine.cpu.costs.evict_bookkeeping
        )
