"""Protocol rules: historical-bug corpus + per-rule trigger/clean pairs."""

from __future__ import annotations

import os

from repro.analysis.runner import lint_paths

FIXTURES = os.path.join(os.path.dirname(os.path.abspath(__file__)),
                        "fixtures")


def _findings(path: str, rule: str):
    return lint_paths([path], select={rule})


# ---------------------------------------------------------------------------
# wal-ordering: the PR-4 regression corpus
# ---------------------------------------------------------------------------


def test_wal_rule_catches_pr4_gc_inversion():
    path = os.path.join(FIXTURES, "wal_inversion.py")
    found = _findings(path, "wal-ordering")
    assert len(found) == 2
    assert all(f.rule == "wal-ordering" for f in found)
    messages = "\n".join(f.message for f in found)
    assert "BuggyGcEngine.relocate" in messages
    assert "BuggyGcEngine.drop" in messages
    assert "FixedGcEngine" not in messages


def test_wal_rule_catches_pr4_checkpoint_invalidation():
    path = os.path.join(FIXTURES, "checkpoint_invalidation.py")
    found = _findings(path, "wal-ordering")
    assert len(found) == 1
    assert "BuggyCheckpointWriter.write_checkpoint" in found[0].message
    assert "flush before invalidate" in found[0].message


WAL_BRANCH = """\
class RecoveryLog:
    def append(self, record):
        return record


class PageStore:
    def upsert(self, key, value):
        return key


class Engine:
    def __init__(self):
        self.log = RecoveryLog()
        self.dc = PageStore()

    def commit(self, key, value, durable):
        if durable:
            self.log.append((key, value))
        self.dc.upsert(key, value)
"""


def test_wal_rule_is_path_sensitive(tmp_path):
    """A branch that skips the log append leaves an unlogged path."""
    target = tmp_path / "branchy.py"
    target.write_text(WAL_BRANCH)
    found = _findings(str(target), "wal-ordering")
    assert len(found) == 1
    assert "Engine.commit" in found[0].message


# ---------------------------------------------------------------------------
# epoch-discipline
# ---------------------------------------------------------------------------

EPOCH_DIRTY = """\
class Heap:
    def __init__(self, machine):
        self.machine = machine
        self._index = {}

    def _protect(self):
        self.machine.cpu.charge("epoch_protect")

    def lookup(self, key):
        self._protect()
        return self._index.get(key)

    def peek(self, key):
        return self._index.get(key)
"""


def test_epoch_rule_requires_protection_before_deref(tmp_path):
    target = tmp_path / "heap.py"
    target.write_text(EPOCH_DIRTY)
    found = _findings(str(target), "epoch-discipline")
    assert len(found) == 1
    assert "Heap.peek" in found[0].message
    assert "_index.get" in found[0].message


EPOCH_LEAK = """\
class Walker:
    def __init__(self, epochs):
        self.epochs = epochs

    def scan_one(self, key):
        self.epochs.epoch_enter()
        if key is None:
            return None
        value = len(key)
        self.epochs.epoch_exit()
        return value
"""

EPOCH_PAIRED = """\
class Walker:
    def __init__(self, epochs):
        self.epochs = epochs

    def scan_one(self, key):
        self.epochs.epoch_enter()
        try:
            if key is None:
                return None
            return len(key)
        finally:
            self.epochs.epoch_exit()
"""


def test_epoch_rule_flags_leaked_epoch_on_early_return(tmp_path):
    target = tmp_path / "leak.py"
    target.write_text(EPOCH_LEAK)
    found = _findings(str(target), "epoch-discipline")
    assert len(found) == 1
    assert "leak" in found[0].message


def test_epoch_rule_accepts_try_finally_pairing(tmp_path):
    target = tmp_path / "paired.py"
    target.write_text(EPOCH_PAIRED)
    assert _findings(str(target), "epoch-discipline") == []


# ---------------------------------------------------------------------------
# fault-site-coverage
# ---------------------------------------------------------------------------

FAULT_DIRTY = """\
class Store:
    def __init__(self, ssd, faults):
        self.ssd = ssd
        self.faults = faults

    def flush(self, nbytes):
        self.ssd.write(nbytes)

    def covered_flush(self, nbytes):
        if self.faults is not None:
            self.faults.hit("log_store.flush")
        self.ssd.write(nbytes)

    def miscovered_flush(self, nbytes):
        if self.faults is not None:
            self.faults.hit("no.such.site")
        self.ssd.write(nbytes)
"""


def test_fault_rule_requires_registered_dominating_hit(tmp_path):
    target = tmp_path / "store.py"
    target.write_text(FAULT_DIRTY)
    found = _findings(str(target), "fault-site-coverage")
    assert len(found) == 2  # flush + miscovered_flush; covered_ is clean
    assert all("crash window" in f.message for f in found)
    lines = {f.line for f in found}
    assert 7 in lines   # flush
    assert 17 in lines  # miscovered_flush (unregistered site name)


FAULT_CLOSURE = """\
class Log:
    def __init__(self, device, faults):
        self.device = device
        self.faults = faults

    def seal(self, buffer):
        if self.faults is not None:
            self.faults.hit("recovery_log.flush")

        def submit():
            self.device.submit_write(buffer)

        return submit
"""


def test_fault_rule_checks_closure_bodies_independently(tmp_path):
    """A hit in the enclosing method does not run when the closure
    later fires on its own — the closure body needs its own hit."""
    target = tmp_path / "log.py"
    target.write_text(FAULT_CLOSURE)
    found = _findings(str(target), "fault-site-coverage")
    assert len(found) == 1
    assert found[0].line == 11


# ---------------------------------------------------------------------------
# shard-isolation
# ---------------------------------------------------------------------------

SHARD_DIRTY = """\
from concurrent.futures import ThreadPoolExecutor


class Fleet:
    def __init__(self, shards):
        self.shards = shards
        self.total = 0

    def dispatch(self):
        def job(shard):
            self.total += 1
            return shard

        with ThreadPoolExecutor() as pool:
            return list(pool.map(job, self.shards))
"""

SHARD_CLEAN = """\
from concurrent.futures import ThreadPoolExecutor


class Fleet:
    def __init__(self, shards):
        self.shards = shards

    def dispatch(self):
        def job(shard):
            return shard

        with ThreadPoolExecutor() as pool:
            return list(pool.map(job, self.shards))
"""


def test_shard_rule_flags_self_state_in_closures(tmp_path):
    target = tmp_path / "fleet.py"
    target.write_text(SHARD_DIRTY)
    found = _findings(str(target), "shard-isolation")
    assert len(found) == 1
    assert "self.total" in found[0].message


def test_shard_rule_accepts_shard_local_closures(tmp_path):
    target = tmp_path / "fleet.py"
    target.write_text(SHARD_CLEAN)
    assert _findings(str(target), "shard-isolation") == []


# ---------------------------------------------------------------------------
# the in-tree fixes stay pinned
# ---------------------------------------------------------------------------


def test_shipped_package_is_protocol_clean():
    import repro

    package = os.path.dirname(os.path.abspath(repro.__file__))
    for rule in ("wal-ordering", "epoch-discipline",
                 "fault-site-coverage", "shard-isolation"):
        assert _findings(package, rule) == []
