"""Minimized reproduction of PR 4's checkpoint invalidation (bug #2).

The checkpoint writer appended the replacement image and invalidated
the previous one before the append had been flushed durable: a crash in
the window lost *both* checkpoint copies and recovery found no live
image.  ``BuggyCheckpointWriter`` preserves that ordering;
``FixedCheckpointWriter`` flushes before invalidating, as shipped.
"""


class SegmentStore:
    def __init__(self):
        self.segments = []
        self.durable = 0

    def append(self, image):
        self.segments.append(image)
        return len(self.segments) - 1

    def flush(self):
        self.durable = len(self.segments)

    def invalidate(self, addr):
        if addr is not None:
            self.segments[addr] = None


class BuggyCheckpointWriter:
    """Invalidates the old image before the new one is durable."""

    def __init__(self):
        self.store = SegmentStore()
        self.previous = None

    def write_checkpoint(self, image):
        addr = self.store.append(image)
        self.store.invalidate(self.previous)
        self.store.flush()
        self.previous = addr


class FixedCheckpointWriter:
    """Append, flush durable, only then invalidate — the fix."""

    def __init__(self):
        self.store = SegmentStore()
        self.previous = None

    def write_checkpoint(self, image):
        addr = self.store.append(image)
        self.store.flush()
        self.store.invalidate(self.previous)
        self.previous = addr
