"""Minimized reproduction of PR 4's WAL inversion (historical bug #1).

The log-structured GC relocated a live committed record by posting the
moved image to the data component *before* appending the relocation to
the recovery log: a crash between the two left the DC claiming state
the WAL could not re-derive.  ``BuggyGcEngine`` preserves that shape;
``FixedGcEngine`` is the shipped ordering.  The regression corpus
asserts ``wal-ordering`` flags the former and stays quiet on the
latter.
"""


class RecoveryLog:
    def __init__(self):
        self.records = []

    def append(self, record):
        self.records.append(record)


class PageStore:
    def __init__(self):
        self.pages = {}

    def upsert(self, key, value):
        self.pages[key] = value

    def delete(self, key):
        self.pages.pop(key, None)


class BuggyGcEngine:
    """DC post first, log append second — the PR-4 inversion."""

    def __init__(self):
        self.log = RecoveryLog()
        self.dc = PageStore()

    def relocate(self, key, value):
        self.dc.upsert(key, value)
        self.log.append((key, value))

    def drop(self, key):
        self.dc.delete(key)
        self.log.append((key, None))


class FixedGcEngine:
    """Log append dominates the DC post on every path — the fix."""

    def __init__(self):
        self.log = RecoveryLog()
        self.dc = PageStore()

    def relocate(self, key, value):
        self.log.append((key, value))
        self.dc.upsert(key, value)

    def drop(self, key):
        self.log.append((key, None))
        self.dc.delete(key)
