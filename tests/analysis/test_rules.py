"""Per-rule unit tests on synthetic snippets.

Each rule gets the same trio: a *positive* snippet that must be
flagged, the identical snippet with a ``# repro: ignore[rule-id]``
suppression that must stay silent, and a *negative* snippet that is
clean by construction.  Snippets are written to a temporary directory,
which is outside the repro tree — the package-scoping convention then
applies every rule to them regardless of directory names.
"""

from __future__ import annotations

from pathlib import Path
from typing import List

import pytest

from repro.analysis import Finding, lint_paths


def _lint_snippet(tmp_path: Path, code: str, rule_id: str,
                  filename: str = "snippet.py") -> List[Finding]:
    target = tmp_path / filename
    target.write_text(code)
    return [
        finding for finding in lint_paths([str(tmp_path)])
        if finding.rule == rule_id
    ]


# ---------------------------------------------------------------------------
# cost-accounting
# ---------------------------------------------------------------------------

COST_POSITIVE = """\
class PageStore:
    def __init__(self, machine):
        self.machine = machine
        self.pages = {}

    def fetch(self, page_id):
        self.machine.cpu.charge("page_read", category="store")
        return self.pages[page_id]


class Engine:
    def __init__(self, machine):
        self.machine = machine
        self.store = PageStore(machine)

    def lookup(self, page_id):
        if page_id in self.store.pages:
            page = self.store.fetch(page_id)
            return page
        entry = self.store.pages.get(page_id)
        if entry is not None:
            entry.state = None
        return entry
"""


class TestCostAccounting:
    RULE = "cost-accounting"

    def test_uncharged_touch_path_is_flagged(self, tmp_path):
        findings = _lint_snippet(tmp_path, COST_POSITIVE, self.RULE)
        assert len(findings) == 1
        finding = findings[0]
        assert "Engine.lookup" in finding.message
        # Points at the def line of the offending method.
        assert finding.line == COST_POSITIVE.splitlines().index(
            "    def lookup(self, page_id):"
        ) + 1

    def test_suppression_silences(self, tmp_path):
        suppressed = COST_POSITIVE.replace(
            "def lookup(self, page_id):",
            "def lookup(self, page_id):  # repro: ignore[cost-accounting]",
        )
        assert not _lint_snippet(tmp_path, suppressed, self.RULE)

    def test_charging_every_path_is_clean(self, tmp_path):
        clean = COST_POSITIVE.replace(
            "    def lookup(self, page_id):\n",
            "    def lookup(self, page_id):\n"
            "        self.machine.cpu.charge(\"op_dispatch\")\n",
        )
        assert not _lint_snippet(tmp_path, clean, self.RULE)

    def test_raise_paths_are_exempt(self, tmp_path):
        code = COST_POSITIVE.replace(
            "        entry = self.store.pages.get(page_id)\n"
            "        if entry is not None:\n"
            "            entry.state = None\n"
            "        return entry\n",
            "        raise KeyError(page_id)\n",
        ).replace(
            "            page = self.store.fetch(page_id)\n"
            "            return page\n",
            "            return self.store.fetch(page_id)\n",
        )
        assert not _lint_snippet(tmp_path, code, self.RULE)

    def test_charge_through_callee_counts(self, tmp_path):
        # store.fetch charges internally, so a method whose only touch
        # is that call is clean — the call graph credits the callee.
        code = COST_POSITIVE.replace(
            "        entry = self.store.pages.get(page_id)\n"
            "        if entry is not None:\n"
            "            entry.state = None\n"
            "        return entry\n",
            "        return self.store.fetch(page_id)\n",
        )
        assert not _lint_snippet(tmp_path, code, self.RULE)

    def test_fault_site_hit_without_charge_is_flagged(self, tmp_path):
        # Arriving at a fault site marks real storage-path work: the
        # registered hooks (hit / run_with_retries / drop_pending) are
        # domain touch verbs, so an uncharged path through them is a
        # finding.
        code = """\
class Store:
    def __init__(self, machine):
        self.machine = machine

    def flush(self, nbytes):
        self.machine.faults.hit("log_store.flush")
        return nbytes

    def drain(self):
        self.machine.io_path.charge_round_trip(512)
        self.machine.faults.hit("log_store.flush")
        return self.drop_pending()

    def drop_pending(self):
        self.machine.io_path.charge_submit(0)
        return 0
"""
        findings = _lint_snippet(tmp_path, code, self.RULE)
        assert len(findings) == 1
        assert "Store.flush" in findings[0].message

    DEMOTE_POSITIVE = """\
class Cache:
    def __init__(self, machine, tiers):
        self.machine = machine
        self.tiers = tiers

    def push_out(self, entry, state):
        self.tiers.demote(entry, state, 1.0)
        return None

    def bring_back(self, entry):
        copy = self.tiers.promote(entry)
        return copy
"""

    @pytest.mark.parametrize("method", ["Cache.push_out", "Cache.bring_back"])
    def test_uncharged_demote_and_promote_are_flagged(self, tmp_path,
                                                      method):
        # Tier demotion/promotion moves page bytes between tiers: it is
        # domain work even on an unknown receiver, so an uncharged path
        # through either verb is a finding.
        findings = _lint_snippet(tmp_path, self.DEMOTE_POSITIVE, self.RULE)
        assert method in {finding.message.split()[0]
                          for finding in findings} \
            or any(method in finding.message for finding in findings)

    def test_charged_demote_and_promote_are_clean(self, tmp_path):
        clean = self.DEMOTE_POSITIVE.replace(
            "        self.tiers.demote(entry, state, 1.0)\n",
            "        self.machine.cpu.charge(\"copy_per_byte\", 64)\n"
            "        self.tiers.demote(entry, state, 1.0)\n",
        ).replace(
            "        copy = self.tiers.promote(entry)\n",
            "        self.machine.cpu.charge(\"copy_per_byte\", 64)\n"
            "        copy = self.tiers.promote(entry)\n",
        )
        assert not _lint_snippet(tmp_path, clean, self.RULE)

    SCALE_POSITIVE = """\
class Installer:
    def __init__(self, machine):
        self.machine = machine

    def install(self, factors):
        self.machine.cpu.scale_costs(factors)
        return factors
"""

    def test_uncharged_scale_costs_is_flagged(self, tmp_path):
        # Installing what-if charge scaling re-prices every subsequent
        # hot-path charge: it is a registered domain touch verb, so an
        # uncharged path through it is a finding.
        findings = _lint_snippet(tmp_path, self.SCALE_POSITIVE, self.RULE)
        assert len(findings) == 1
        assert "Installer.install" in findings[0].message

    def test_charged_scale_costs_is_clean(self, tmp_path):
        clean = self.SCALE_POSITIVE.replace(
            "        self.machine.cpu.scale_costs(factors)\n",
            "        self.machine.cpu.charge(\"op_dispatch\")\n"
            "        self.machine.cpu.scale_costs(factors)\n",
        )
        assert not _lint_snippet(tmp_path, clean, self.RULE)

    def test_scale_costs_suppression_silences(self, tmp_path):
        suppressed = self.SCALE_POSITIVE.replace(
            "    def install(self, factors):",
            "    def install(self, factors):"
            "  # repro: ignore[cost-accounting]",
        )
        assert not _lint_snippet(tmp_path, suppressed, self.RULE)


# ---------------------------------------------------------------------------
# determinism
# ---------------------------------------------------------------------------

DETERMINISM_POSITIVE = """\
import time


def stamp():
    return time.time()
"""


class TestDeterminism:
    RULE = "determinism"

    def test_wall_clock_read_is_flagged(self, tmp_path):
        findings = _lint_snippet(tmp_path, DETERMINISM_POSITIVE, self.RULE)
        assert len(findings) == 1
        assert "time.time" in findings[0].message
        assert findings[0].line == 5

    def test_suppression_silences(self, tmp_path):
        suppressed = DETERMINISM_POSITIVE.replace(
            "return time.time()",
            "return time.time()  # repro: ignore[determinism]",
        )
        assert not _lint_snippet(tmp_path, suppressed, self.RULE)

    def test_virtual_clock_is_clean(self, tmp_path):
        clean = """\
def stamp(machine):
    return machine.clock.now
"""
        assert not _lint_snippet(tmp_path, clean, self.RULE)

    @pytest.mark.parametrize("code,fragment", [
        ("from time import perf_counter\n", "from time import"),
        ("import datetime\n\n\ndef f():\n"
         "    return datetime.datetime.now()\n", "now"),
        ("from datetime import datetime\n\n\ndef f():\n"
         "    return datetime.utcnow()\n", "utcnow"),
        ("import random\n\n\ndef f():\n"
         "    return random.randint(0, 1)\n", "random.randint"),
        ("from random import Random\n\n\ndef f():\n"
         "    return Random()\n", "unseeded"),
    ])
    def test_banned_forms(self, tmp_path, code, fragment):
        findings = _lint_snippet(tmp_path, code, self.RULE)
        assert findings, code
        assert fragment in findings[0].message

    def test_seeded_random_is_clean(self, tmp_path):
        clean = """\
from random import Random


def make_rng(seed):
    return Random(seed)
"""
        assert not _lint_snippet(tmp_path, clean, self.RULE)

    def test_bench_directory_is_exempt(self, tmp_path):
        bench = tmp_path / "repro" / "bench"
        bench.mkdir(parents=True)
        (bench / "timing.py").write_text(DETERMINISM_POSITIVE)
        findings = [
            f for f in lint_paths([str(tmp_path)])
            if f.rule == self.RULE
        ]
        assert not findings


# ---------------------------------------------------------------------------
# slots-dataclass
# ---------------------------------------------------------------------------

SLOTS_POSITIVE = """\
from dataclasses import dataclass


@dataclass
class HotRecord:
    key: bytes
    value: bytes
"""


class TestSlotsDataclass:
    RULE = "slots-dataclass"

    def test_missing_slots_is_flagged(self, tmp_path):
        findings = _lint_snippet(tmp_path, SLOTS_POSITIVE, self.RULE)
        assert len(findings) == 1
        assert "HotRecord" in findings[0].message

    def test_suppression_silences(self, tmp_path):
        suppressed = SLOTS_POSITIVE.replace(
            "class HotRecord:",
            "class HotRecord:  # repro: ignore[slots-dataclass]",
        )
        assert not _lint_snippet(tmp_path, suppressed, self.RULE)

    def test_slots_kwarg_is_clean(self, tmp_path):
        clean = SLOTS_POSITIVE.replace(
            "@dataclass", "@dataclass(slots=True)"
        )
        assert not _lint_snippet(tmp_path, clean, self.RULE)

    def test_explicit_slots_assignment_is_clean(self, tmp_path):
        clean = SLOTS_POSITIVE.replace(
            "    key: bytes\n",
            "    __slots__ = (\"key\", \"value\")\n    key: bytes\n",
        )
        assert not _lint_snippet(tmp_path, clean, self.RULE)

    def test_subclasses_are_skipped(self, tmp_path):
        # Slots + inheritance interact badly; the rule leaves subclasses
        # to human judgement.
        code = SLOTS_POSITIVE.replace(
            "class HotRecord:", "class HotRecord(Base):"
        )
        assert not _lint_snippet(tmp_path, code, self.RULE)


# ---------------------------------------------------------------------------
# mutable-default
# ---------------------------------------------------------------------------

MUTABLE_POSITIVE = """\
def collect(item, bucket=[]):
    bucket.append(item)
    return bucket
"""


class TestMutableDefault:
    RULE = "mutable-default"

    def test_list_default_is_flagged(self, tmp_path):
        findings = _lint_snippet(tmp_path, MUTABLE_POSITIVE, self.RULE)
        assert len(findings) == 1
        assert "collect" in findings[0].message

    def test_suppression_silences(self, tmp_path):
        suppressed = MUTABLE_POSITIVE.replace(
            "def collect(item, bucket=[]):",
            "def collect(item, bucket=[]):  # repro: ignore[mutable-default]",
        )
        assert not _lint_snippet(tmp_path, suppressed, self.RULE)

    def test_none_default_is_clean(self, tmp_path):
        clean = """\
def collect(item, bucket=None):
    bucket = bucket if bucket is not None else []
    bucket.append(item)
    return bucket
"""
        assert not _lint_snippet(tmp_path, clean, self.RULE)

    @pytest.mark.parametrize("default", ["{}", "set()", "dict()", "list()"])
    def test_other_mutable_defaults(self, tmp_path, default):
        code = f"def f(x={default}):\n    return x\n"
        assert _lint_snippet(tmp_path, code, self.RULE)

    def test_frozen_defaults_are_clean(self, tmp_path):
        code = "def f(x=(), y=0, z=\"s\", w=frozenset()):\n    return x\n"
        assert not _lint_snippet(tmp_path, code, self.RULE)


# ---------------------------------------------------------------------------
# counter-additivity
# ---------------------------------------------------------------------------

ADDITIVITY_POSITIVE = """\
class Shard:
    def stats(self):
        return {"operations": 1, "commits": 2}


_ADDITIVE_STAT_KEYS = (
    "operations",
    "commits",
    "aborts",
)


class Fleet:
    def __init__(self, shards):
        self.shards = shards

    def stats(self):
        per_shard = [shard.stats() for shard in self.shards]
        return {
            key: sum(stats[key] for stats in per_shard)
            for key in _ADDITIVE_STAT_KEYS
        }
"""


class TestCounterAdditivity:
    RULE = "counter-additivity"

    def test_missing_provider_key_is_flagged(self, tmp_path):
        findings = _lint_snippet(tmp_path, ADDITIVITY_POSITIVE, self.RULE)
        assert len(findings) == 1
        finding = findings[0]
        assert "'aborts'" in finding.message
        assert "Shard" in finding.message
        # Points at the tuple element that has no backing counter.
        assert finding.line == ADDITIVITY_POSITIVE.splitlines().index(
            "    \"aborts\","
        ) + 1

    def test_suppression_silences(self, tmp_path):
        suppressed = ADDITIVITY_POSITIVE.replace(
            "    \"aborts\",",
            "    \"aborts\",  # repro: ignore[counter-additivity]",
        )
        assert not _lint_snippet(tmp_path, suppressed, self.RULE)

    def test_complete_provider_is_clean(self, tmp_path):
        clean = ADDITIVITY_POSITIVE.replace(
            "return {\"operations\": 1, \"commits\": 2}",
            "return {\"operations\": 1, \"commits\": 2, \"aborts\": 3}",
        )
        assert not _lint_snippet(tmp_path, clean, self.RULE)

    def test_imported_provider_is_checked(self, tmp_path):
        (tmp_path / "shard.py").write_text(
            "class Shard:\n"
            "    def stats(self):\n"
            "        return {\"operations\": 1}\n"
        )
        (tmp_path / "fleet.py").write_text(
            "from shard import Shard\n\n"
            "_ADDITIVE_STAT_KEYS = (\"operations\", \"commits\")\n"
        )
        findings = [
            f for f in lint_paths([str(tmp_path)])
            if f.rule == self.RULE
        ]
        assert len(findings) == 1
        assert "'commits'" in findings[0].message
        assert findings[0].path.endswith("fleet.py")


# ---------------------------------------------------------------------------
# observability hooks as domain touch verbs
# ---------------------------------------------------------------------------

SPAN_TOUCH_POSITIVE = """\
class Engine:
    def __init__(self, machine):
        self.machine = machine
        self.values = {}

    def lookup(self, key):
        with self.machine.trace_span("engine.get", "engine"):
            return self.values.get(key)
"""

OBSERVE_TOUCH_POSITIVE = """\
class Store:
    def __init__(self, machine):
        self.machine = machine
        self.latencies = machine.op_latencies

    def record(self, value):
        self.latencies.observe(value)
        return value
"""


class TestObservabilityTouchVerbs:
    """``trace_span`` / ``observe`` count as domain touches: a method
    worth a span or a hot-path metric must also charge its cost."""

    RULE = "cost-accounting"

    def test_span_without_charge_is_flagged(self, tmp_path):
        findings = _lint_snippet(tmp_path, SPAN_TOUCH_POSITIVE, self.RULE)
        assert len(findings) == 1
        assert "Engine.lookup" in findings[0].message

    def test_span_with_charge_is_clean(self, tmp_path):
        charged = SPAN_TOUCH_POSITIVE.replace(
            "            return self.values.get(key)",
            "            self.machine.cpu.charge(\"lookup\", "
            "category=\"engine\")\n"
            "            return self.values.get(key)",
        )
        assert not _lint_snippet(tmp_path, charged, self.RULE)

    def test_span_suppression_silences(self, tmp_path):
        suppressed = SPAN_TOUCH_POSITIVE.replace(
            "def lookup(self, key):",
            "def lookup(self, key):  # repro: ignore[cost-accounting]",
        )
        assert not _lint_snippet(tmp_path, suppressed, self.RULE)

    def test_observe_without_charge_is_flagged(self, tmp_path):
        findings = _lint_snippet(
            tmp_path, OBSERVE_TOUCH_POSITIVE, self.RULE)
        assert len(findings) == 1
        assert "Store.record" in findings[0].message

    def test_observe_with_charge_is_clean(self, tmp_path):
        charged = OBSERVE_TOUCH_POSITIVE.replace(
            "        self.latencies.observe(value)",
            "        self.machine.cpu.charge(\"observe\", "
            "category=\"metrics\")\n"
            "        self.latencies.observe(value)",
        )
        assert not _lint_snippet(tmp_path, charged, self.RULE)


COMMIT_ENQUEUE_POSITIVE = """\
class Committer:
    def __init__(self, machine, pipeline):
        self.machine = machine
        self.pipeline = pipeline

    def commit(self, txn):
        return self.pipeline.enqueue_epoch(len(txn))
"""

COMMIT_RESOLVE_POSITIVE = """\
class AckLoop:
    def __init__(self, machine, pipeline):
        self.machine = machine
        self.pipeline = pipeline

    def drain(self):
        self.pipeline.ack()
        self.pipeline.resolve_future()
"""


class TestCommitPipelineTouchVerbs:
    """``enqueue_epoch`` / ``ack`` / ``resolve_future`` count as domain
    touches: commit-path work on the durable log must charge its cost."""

    RULE = "cost-accounting"

    def test_enqueue_epoch_without_charge_is_flagged(self, tmp_path):
        findings = _lint_snippet(
            tmp_path, COMMIT_ENQUEUE_POSITIVE, self.RULE)
        assert len(findings) == 1
        assert "Committer.commit" in findings[0].message

    def test_enqueue_epoch_with_charge_is_clean(self, tmp_path):
        charged = COMMIT_ENQUEUE_POSITIVE.replace(
            "        return self.pipeline.enqueue_epoch(len(txn))",
            "        self.machine.cpu.charge(\"commit\", "
            "category=\"tc\")\n"
            "        return self.pipeline.enqueue_epoch(len(txn))",
        )
        assert not _lint_snippet(tmp_path, charged, self.RULE)

    def test_enqueue_epoch_suppression_silences(self, tmp_path):
        suppressed = COMMIT_ENQUEUE_POSITIVE.replace(
            "def commit(self, txn):",
            "def commit(self, txn):  # repro: ignore[cost-accounting]",
        )
        assert not _lint_snippet(tmp_path, suppressed, self.RULE)

    def test_ack_and_resolve_without_charge_are_flagged(self, tmp_path):
        findings = _lint_snippet(
            tmp_path, COMMIT_RESOLVE_POSITIVE, self.RULE)
        assert len(findings) == 1
        assert "AckLoop.drain" in findings[0].message

    def test_ack_and_resolve_with_charge_are_clean(self, tmp_path):
        charged = COMMIT_RESOLVE_POSITIVE.replace(
            "        self.pipeline.ack()",
            "        self.machine.cpu.charge(\"ack\", "
            "category=\"commit_pipeline\")\n"
            "        self.pipeline.ack()",
        )
        assert not _lint_snippet(tmp_path, charged, self.RULE)


RECORD_APPEND_POSITIVE = """\
class FastPath:
    def __init__(self, machine, records):
        self.machine = machine
        self.records = records

    def post(self, key, value):
        return self.records.append_record(key, value, dirty=True)
"""

RECORD_GC_POSITIVE = """\
class Collector:
    def __init__(self, machine, records):
        self.machine = machine
        self.records = records

    def reclaim(self, key, record):
        self.records.seal_arena()
        self.records.relocate(key, record)
"""


class TestRecordCacheTouchVerbs:
    """``append_record`` / ``relocate`` / ``seal_arena`` count as domain
    touches: record-heap mutations on the MM hot path must charge."""

    RULE = "cost-accounting"

    def test_append_record_without_charge_is_flagged(self, tmp_path):
        findings = _lint_snippet(
            tmp_path, RECORD_APPEND_POSITIVE, self.RULE)
        assert len(findings) == 1
        assert "FastPath.post" in findings[0].message

    def test_append_record_with_charge_is_clean(self, tmp_path):
        charged = RECORD_APPEND_POSITIVE.replace(
            "        return self.records.append_record(key, value, "
            "dirty=True)",
            "        self.machine.cpu.charge(\"install_cas\", "
            "category=\"tc_record_cache\")\n"
            "        return self.records.append_record(key, value, "
            "dirty=True)",
        )
        assert not _lint_snippet(tmp_path, charged, self.RULE)

    def test_append_record_suppression_silences(self, tmp_path):
        suppressed = RECORD_APPEND_POSITIVE.replace(
            "def post(self, key, value):",
            "def post(self, key, value):  # repro: ignore[cost-accounting]",
        )
        assert not _lint_snippet(tmp_path, suppressed, self.RULE)

    def test_relocate_and_seal_without_charge_are_flagged(self, tmp_path):
        findings = _lint_snippet(
            tmp_path, RECORD_GC_POSITIVE, self.RULE)
        assert len(findings) == 1
        assert "Collector.reclaim" in findings[0].message

    def test_relocate_and_seal_with_charge_are_clean(self, tmp_path):
        charged = RECORD_GC_POSITIVE.replace(
            "        self.records.seal_arena()",
            "        self.machine.cpu.charge(\"install_cas\", "
            "category=\"tc_record_cache\")\n"
            "        self.records.seal_arena()",
        )
        assert not _lint_snippet(tmp_path, charged, self.RULE)


# ---------------------------------------------------------------------------
# counter-additivity against snapshot() providers (metrics registry)
# ---------------------------------------------------------------------------

SNAPSHOT_ADDITIVITY_POSITIVE = """\
class Collector:
    def snapshot(self):
        return {"hits": 1, "misses": 2}


REGISTRY_ADDITIVE_KEYS = ("hits", "misses", "evictions")


def fleet_totals(collectors):
    return {
        key: sum(collector.snapshot()[key] for collector in collectors)
        for key in REGISTRY_ADDITIVE_KEYS
    }
"""


class TestSnapshotProviderAdditivity:
    """The registry convention: ``snapshot()`` dict literals back
    additive declarations just like engine ``stats()`` dicts."""

    RULE = "counter-additivity"

    def test_missing_snapshot_key_is_flagged(self, tmp_path):
        findings = _lint_snippet(
            tmp_path, SNAPSHOT_ADDITIVITY_POSITIVE, self.RULE)
        assert len(findings) == 1
        assert "'evictions'" in findings[0].message
        assert "Collector" in findings[0].message

    def test_suppression_silences(self, tmp_path):
        suppressed = SNAPSHOT_ADDITIVITY_POSITIVE.replace(
            "(\"hits\", \"misses\", \"evictions\")",
            "(\"hits\", \"misses\",\n"
            "    \"evictions\",  # repro: ignore[counter-additivity]\n"
            ")",
        )
        assert not _lint_snippet(tmp_path, suppressed, self.RULE)

    def test_complete_snapshot_provider_is_clean(self, tmp_path):
        clean = SNAPSHOT_ADDITIVITY_POSITIVE.replace(
            "return {\"hits\": 1, \"misses\": 2}",
            "return {\"hits\": 1, \"misses\": 2, \"evictions\": 0}",
        )
        assert not _lint_snippet(tmp_path, clean, self.RULE)
