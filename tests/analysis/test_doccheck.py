"""doc-check: backticked ``repro.*`` references resolve against source.

The architecture doc is the contract: `python -m repro doc-check` (and
the CI docs job) fail when a cited symbol disappears.  These tests pin
the checker's resolution rules on synthetic docs and keep the real
docs/ARCHITECTURE.md green from inside the test suite too.
"""

from __future__ import annotations

import os
from pathlib import Path

import repro
from repro.analysis.doccheck import DocChecker, extract_symbols

PACKAGE_ROOT = os.path.dirname(os.path.abspath(repro.__file__))
REPO_ROOT = Path(__file__).resolve().parents[2]


def _checker() -> DocChecker:
    return DocChecker(PACKAGE_ROOT)


def test_architecture_doc_has_no_stale_symbols():
    doc = REPO_ROOT / "docs" / "ARCHITECTURE.md"
    assert _checker().check_doc(str(doc)) == []


def test_extract_symbols_only_matches_backticked_repro_refs():
    text = (
        "see `repro.hardware.machine.Machine.summary` and\n"
        "`other.package.thing`, plus bare repro.core.mixture text\n"
        "and `repro.workloads.ycsb.WorkloadSpec`.\n"
    )
    symbols = extract_symbols(text)
    assert (1, "repro.hardware.machine.Machine.summary") in symbols
    assert (3, "repro.workloads.ycsb.WorkloadSpec") in symbols
    assert all(symbol.startswith("repro.") for __, symbol in symbols)
    assert len(symbols) == 2  # unbackticked / foreign refs ignored


def test_module_class_member_and_instance_attrs_resolve():
    checker = _checker()
    assert checker.resolve("repro.observability") is None
    assert checker.resolve("repro.observability.spans.Tracer") is None
    # Methods, properties and self.<attr> instance attributes all count.
    assert checker.resolve(
        "repro.observability.spans.Tracer.cpu_us_by_component") is None
    assert checker.resolve(
        "repro.hardware.machine.Machine.op_latencies") is None
    assert checker.resolve(
        "repro.observability.spans.SPAN_NAMES") is None


def test_unknown_member_is_reported(tmp_path):
    doc = tmp_path / "doc.md"
    doc.write_text("`repro.hardware.machine.Machine.frobnicate`\n")
    errors = _checker().check_doc(str(doc))
    assert len(errors) == 1
    assert "frobnicate" in errors[0]


def test_unknown_module_is_reported():
    reason = _checker().resolve("repro.nonexistent.Widget")
    assert reason is not None


def test_doc_without_any_symbols_is_an_error(tmp_path):
    doc = tmp_path / "empty.md"
    doc.write_text("prose with no symbol citations\n")
    errors = _checker().check_doc(str(doc))
    assert errors
    assert "no `repro.*` symbol references" in errors[0]


def test_analysis_doc_has_no_stale_symbols():
    doc = REPO_ROOT / "docs" / "ANALYSIS.md"
    assert _checker().check_doc(str(doc)) == []


def test_analysis_doc_is_in_the_default_doc_set():
    # The doc-check CLI must cover docs/ANALYSIS.md without arguments,
    # or the rule catalog rots the way ARCHITECTURE.md used to.
    import argparse

    from repro.analysis import doccheck

    recorded = {}
    original = argparse.ArgumentParser.parse_args

    def spy(self, argv=None):
        namespace = original(self, argv)
        recorded["docs"] = namespace.docs
        return namespace

    argparse.ArgumentParser.parse_args = spy
    try:
        doccheck.main(["--package-root", PACKAGE_ROOT])
    finally:
        argparse.ArgumentParser.parse_args = original
    assert "docs/ANALYSIS.md" in recorded["docs"]
