"""Gate tests for the external toolchain (ruff, mypy).

Both tools are CI-installed via the ``lint`` extra; local environments
without them skip these tests rather than fail, so the tier-1 suite
stays runnable from a bare checkout.
"""

from __future__ import annotations

import shutil
import subprocess
from pathlib import Path

import pytest

REPO_ROOT = Path(__file__).resolve().parents[2]


def _run(tool: str, *args: str) -> subprocess.CompletedProcess:
    return subprocess.run(
        [tool, *args],
        cwd=REPO_ROOT,
        capture_output=True,
        text=True,
    )


@pytest.mark.skipif(shutil.which("ruff") is None,
                    reason="ruff not installed (CI installs the lint extra)")
def test_ruff_is_clean():
    result = _run("ruff", "check", "src", "tests")
    assert result.returncode == 0, result.stdout + result.stderr


@pytest.mark.skipif(shutil.which("mypy") is None,
                    reason="mypy not installed (CI installs the lint extra)")
def test_mypy_strict_core_and_hardware():
    result = _run("mypy")
    assert result.returncode == 0, result.stdout + result.stderr
