"""Machine bundling and throughput summaries."""

import pytest

from repro.hardware import IoPathKind, Machine, RunSummary


def test_paper_default_shape():
    machine = Machine.paper_default()
    assert machine.cpu.cores == 4
    assert machine.io_path.kind is IoPathKind.USER_LEVEL
    assert machine.ssd.spec.iops == pytest.approx(2.0e5)


def test_operations_counted():
    machine = Machine.paper_default()
    machine.begin_operation()
    machine.begin_operation()
    assert machine.operations == 2


def test_summary_cpu_bound_throughput():
    machine = Machine.paper_default(cores=2)
    for __ in range(100):
        machine.begin_operation()
        machine.cpu.charge_us(1.0)
    summary = machine.summary()
    assert not summary.io_bound
    # 100 ops, 100 core-us over 2 cores -> 50 us elapsed -> 2 Mops/s.
    assert summary.throughput_ops_per_sec == pytest.approx(2e6)
    assert summary.core_us_per_op == pytest.approx(1.0)


def test_summary_io_bound_detection():
    machine = Machine.paper_default(cores=4)
    for __ in range(1000):
        machine.begin_operation()
        machine.cpu.charge_us(0.1)
        machine.ssd.read(4096)
    summary = machine.summary()
    assert summary.io_bound
    # Throughput clamps to the device: 2e5 IOPS.
    assert summary.throughput_ops_per_sec == pytest.approx(2e5, rel=0.01)


def test_summary_ios_per_op():
    machine = Machine.paper_default()
    machine.begin_operation()
    machine.ssd.read(100)
    machine.ssd.read(100)
    assert machine.summary().ios_per_op == pytest.approx(2.0)


def test_reset_accounting_preserves_resident_state():
    machine = Machine.paper_default()
    machine.dram.allocate(100, "x")
    machine.ssd.store_bytes(50)
    machine.begin_operation()
    machine.cpu.charge_us(1.0)
    machine.reset_accounting()
    summary = machine.summary()
    assert summary.operations == 0
    assert summary.cpu_busy_seconds == 0.0
    assert machine.dram.bytes_for("x") == 100
    assert machine.ssd.stored_bytes == 50


def test_empty_summary_is_all_zero():
    summary = RunSummary(operations=0, cpu_busy_seconds=0.0,
                         ssd_busy_seconds=0.0, cores=4, ssd_ios=0)
    assert summary.throughput_ops_per_sec == 0.0
    assert summary.core_us_per_op == 0.0
    assert summary.ios_per_op == 0.0


def test_latency_window_brackets_one_op():
    machine = Machine.paper_default()
    window = machine.latency_window()
    machine.cpu.charge_us(2.0)
    machine.ssd.read(4096)
    latency = machine.observe_latency(window)
    assert latency >= 2.0 + machine.ssd.spec.read_latency_us
    assert machine.op_latencies.count == 1


def test_latency_reset_with_accounting():
    machine = Machine.paper_default()
    machine.observe_latency(machine.latency_window())
    machine.reset_accounting()
    assert machine.op_latencies.count == 0
