"""DRAM byte accounting."""

import pytest

from repro.hardware import DramFullError, DramModel


def test_allocate_and_free():
    dram = DramModel()
    dram.allocate(100, "a")
    dram.allocate(50, "b")
    assert dram.current_bytes == 150
    dram.free(30, "a")
    assert dram.current_bytes == 120
    assert dram.bytes_for("a") == 70


def test_peak_tracks_high_water_mark():
    dram = DramModel()
    dram.allocate(100)
    dram.free(100)
    dram.allocate(40)
    assert dram.peak_bytes == 100
    assert dram.current_bytes == 40


def test_reset_peak():
    dram = DramModel()
    dram.allocate(100)
    dram.free(60)
    dram.reset_peak()
    assert dram.peak_bytes == 40


def test_by_tag_omits_empty():
    dram = DramModel()
    dram.allocate(10, "x")
    dram.free(10, "x")
    dram.allocate(5, "y")
    assert dram.by_tag() == {"y": 5}


def test_cannot_overfree_tag():
    dram = DramModel()
    dram.allocate(10, "x")
    with pytest.raises(ValueError):
        dram.free(11, "x")


def test_cannot_free_untagged_from_other_tag():
    dram = DramModel()
    dram.allocate(10, "x")
    with pytest.raises(ValueError):
        dram.free(5, "y")


def test_capacity_enforced():
    dram = DramModel(capacity_bytes=100)
    dram.allocate(90)
    with pytest.raises(DramFullError):
        dram.allocate(11)


def test_negative_amounts_rejected():
    dram = DramModel()
    with pytest.raises(ValueError):
        dram.allocate(-1)
    with pytest.raises(ValueError):
        dram.free(-1)


def test_zero_capacity_rejected():
    with pytest.raises(ValueError):
        DramModel(capacity_bytes=0)
