"""CPU cost model: charging, clock coupling, calibration invariants."""

import pytest

from repro.hardware import CostTable, CpuModel, VirtualClock


def test_charge_named_primitive_returns_amount():
    cpu = CpuModel(cores=1)
    amount = cpu.charge("op_dispatch")
    assert amount == pytest.approx(cpu.costs.op_dispatch)


def test_charge_with_count_scales():
    cpu = CpuModel(cores=1)
    amount = cpu.charge("delta_chain_hop", 5)
    assert amount == pytest.approx(cpu.costs.delta_chain_hop * 5)


def test_busy_accumulates():
    cpu = CpuModel(cores=1)
    cpu.charge_us(2.0)
    cpu.charge_us(3.0)
    assert cpu.busy_us == pytest.approx(5.0)
    assert cpu.busy_seconds == pytest.approx(5e-6)


def test_rejects_negative_charge():
    with pytest.raises(ValueError):
        CpuModel(cores=1).charge_us(-1.0)


def test_rejects_zero_cores():
    with pytest.raises(ValueError):
        CpuModel(cores=0)


def test_clock_advances_scaled_by_cores():
    clock = VirtualClock()
    cpu = CpuModel(cores=4, clock=clock)
    cpu.charge_us(8.0)
    assert clock.now == pytest.approx(2e-6)


def test_elapsed_if_cpu_bound():
    cpu = CpuModel(cores=2)
    cpu.charge_us(4e6)   # 4 core-seconds
    assert cpu.elapsed_if_cpu_bound() == pytest.approx(2.0)


def test_categories_tracked():
    cpu = CpuModel(cores=1)
    cpu.charge("hash_probe", 2, category="mvcc")
    assert cpu.counters.get("cpu_us.mvcc") == pytest.approx(
        2 * cpu.costs.hash_probe
    )


def test_reset_preserves_clock():
    clock = VirtualClock()
    cpu = CpuModel(cores=1, clock=clock)
    cpu.charge_us(10.0)
    cpu.reset()
    assert cpu.busy_us == 0.0
    assert clock.now > 0.0


def test_unknown_primitive_raises():
    with pytest.raises(AttributeError):
        CpuModel(cores=1).charge("not_a_primitive")


class TestCostTable:
    def test_scaled_multiplies_everything(self):
        table = CostTable()
        doubled = table.scaled(2.0)
        assert doubled.op_dispatch == pytest.approx(table.op_dispatch * 2)
        assert doubled.io_submit_kernel == pytest.approx(
            table.io_submit_kernel * 2
        )

    def test_scaled_rejects_nonpositive(self):
        with pytest.raises(ValueError):
            CostTable().scaled(0.0)

    def test_with_overrides(self):
        table = CostTable().with_overrides(op_dispatch=9.0)
        assert table.op_dispatch == 9.0
        assert table.epoch_protect == CostTable().epoch_protect

    def test_kernel_path_costs_exceed_user_path(self):
        """The calibration invariant behind R_kernel > R_user."""
        table = CostTable()
        assert table.io_submit_kernel > table.io_submit_user
        assert table.io_complete_kernel > table.io_complete_user

    def test_compression_costs_more_than_decompression(self):
        table = CostTable()
        assert table.compress_per_byte > table.decompress_per_byte
