"""Tier specs and storage hierarchies: validation, ordering, presets."""

import pytest

from repro.hardware import StorageHierarchy, TierSpec


def tier(**overrides) -> TierSpec:
    base = dict(
        name="t", dollars_per_byte=1e-9, access_latency_s=1e-6,
        iops=1e6, io_dollars=10.0, cpu_path_r=2.0,
    )
    base.update(overrides)
    return TierSpec(**base)


class TestTierSpec:
    def test_valid_spec_round_trips(self):
        spec = tier(name="nvme", durable_home=True)
        assert spec.name == "nvme"
        assert spec.durable_home
        assert spec.io_dollars_per_access_rate == pytest.approx(
            spec.io_dollars / spec.iops
        )

    def test_empty_name_rejected(self):
        with pytest.raises(ValueError, match="name"):
            tier(name="")

    def test_nonpositive_dollars_per_byte_rejected(self):
        with pytest.raises(ValueError, match="dollars_per_byte"):
            tier(dollars_per_byte=0.0)
        with pytest.raises(ValueError, match="dollars_per_byte"):
            tier(dollars_per_byte=-1e-9)

    def test_negative_latency_rejected(self):
        with pytest.raises(ValueError, match="access_latency_s"):
            tier(access_latency_s=-1e-9)

    def test_nonpositive_iops_rejected(self):
        with pytest.raises(ValueError, match="iops"):
            tier(iops=0.0)

    def test_negative_io_dollars_rejected(self):
        with pytest.raises(ValueError, match="io_dollars"):
            tier(io_dollars=-1.0)

    def test_cpu_path_below_one_rejected(self):
        # R < 1 would price a tier access cheaper than a cached MM op.
        with pytest.raises(ValueError, match="cpu_path_r"):
            tier(cpu_path_r=0.9)


def stack(*specs) -> StorageHierarchy:
    return StorageHierarchy(tuple(specs))


class TestStorageHierarchy:
    def test_needs_two_tiers(self):
        with pytest.raises(ValueError, match="two tiers"):
            stack(tier(name="only", durable_home=True))

    def test_duplicate_names_rejected(self):
        with pytest.raises(ValueError, match="duplicate"):
            stack(tier(name="a", dollars_per_byte=2e-9),
                  tier(name="a", dollars_per_byte=1e-9,
                       durable_home=True))

    def test_prices_must_strictly_decrease(self):
        with pytest.raises(ValueError, match="cheaper"):
            stack(tier(name="a", dollars_per_byte=1e-9),
                  tier(name="b", dollars_per_byte=1e-9,
                       durable_home=True))

    def test_cpu_path_must_not_decrease(self):
        with pytest.raises(ValueError, match="CPU path"):
            stack(tier(name="a", dollars_per_byte=2e-9, cpu_path_r=5.0),
                  tier(name="b", dollars_per_byte=1e-9, cpu_path_r=2.0,
                       durable_home=True))

    def test_home_must_be_bottom(self):
        with pytest.raises(ValueError, match="bottom"):
            stack(tier(name="a", dollars_per_byte=2e-9,
                       durable_home=True),
                  tier(name="b", dollars_per_byte=1e-9, cpu_path_r=3.0,
                       durable_home=True))
        with pytest.raises(ValueError, match="durable home"):
            stack(tier(name="a", dollars_per_byte=2e-9),
                  tier(name="b", dollars_per_byte=1e-9, cpu_path_r=3.0))

    def test_structure_accessors(self):
        hierarchy = StorageHierarchy.cxl_2026()
        assert len(hierarchy) == 3
        assert hierarchy.top.name == "dram"
        assert hierarchy.home.name == "nvme-ssd"
        assert hierarchy.home.durable_home
        assert hierarchy.get("cxl-far-memory").cpu_path_r == 1.6
        with pytest.raises(KeyError):
            hierarchy.get("tape")
        pairs = hierarchy.pairs()
        assert [(u.name, lo.name) for u, lo in pairs] == [
            ("dram", "cxl-far-memory"), ("cxl-far-memory", "nvme-ssd"),
        ]
        assert list(iter(hierarchy)) == list(hierarchy.tiers)
        assert hierarchy[0] is hierarchy.top


class TestPresets:
    def test_paper_2018_matches_catalog_constants(self):
        from repro.core import CostCatalog
        hierarchy = StorageHierarchy.paper_2018()
        catalog = CostCatalog()
        assert len(hierarchy) == 2
        assert hierarchy.top.dollars_per_byte == catalog.dram_per_byte
        assert hierarchy.home.cpu_path_r == catalog.r
        assert hierarchy.home.iops == catalog.iops
        assert hierarchy.home.io_dollars == catalog.ssd_io_dollars

    def test_modern_2026_is_four_tiers_validated(self):
        hierarchy = StorageHierarchy.modern_2026()
        assert len(hierarchy) == 4
        assert [t.name for t in hierarchy] == [
            "dram", "cxl-far-memory", "nvme-ssd", "object-store",
        ]
        # Load/store tiers carry no device capital.
        assert hierarchy.get("dram").io_dollars == 0.0
        assert hierarchy.get("cxl-far-memory").io_dollars == 0.0
