"""VirtualClock semantics."""

import pytest

from repro.hardware import VirtualClock


def test_starts_at_zero_by_default():
    assert VirtualClock().now == 0.0


def test_starts_at_given_time():
    assert VirtualClock(5.0).now == 5.0


def test_rejects_negative_start():
    with pytest.raises(ValueError):
        VirtualClock(-1.0)


def test_advance_accumulates():
    clock = VirtualClock()
    clock.advance(1.5)
    clock.advance(0.5)
    assert clock.now == 2.0


def test_advance_returns_new_time():
    clock = VirtualClock(1.0)
    assert clock.advance(2.0) == 3.0


def test_advance_us_converts_units():
    clock = VirtualClock()
    clock.advance_us(2_000_000.0)
    assert clock.now == pytest.approx(2.0)


def test_rejects_negative_advance():
    with pytest.raises(ValueError):
        VirtualClock().advance(-0.1)


def test_zero_advance_is_allowed():
    clock = VirtualClock(1.0)
    clock.advance(0.0)
    assert clock.now == 1.0


def test_reset_rewinds():
    clock = VirtualClock()
    clock.advance(10.0)
    clock.reset()
    assert clock.now == 0.0


def test_reset_to_value():
    clock = VirtualClock()
    clock.advance(10.0)
    clock.reset(3.0)
    assert clock.now == 3.0


def test_reset_rejects_negative():
    with pytest.raises(ValueError):
        VirtualClock().reset(-2.0)
