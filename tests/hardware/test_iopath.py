"""I/O path CPU charges: the source of the user-vs-kernel R gap."""

import pytest

from repro.hardware import CpuModel, IoPathKind, IoPathModel


def make(kind: IoPathKind) -> tuple:
    cpu = CpuModel(cores=1)
    return cpu, IoPathModel(kind, cpu)


def test_user_round_trip_charges_submit_complete_switches():
    cpu, path = make(IoPathKind.USER_LEVEL)
    charged = path.charge_round_trip(4096)
    expected = (cpu.costs.io_submit_user + cpu.costs.io_complete_user
                + 2 * cpu.costs.context_switch)
    assert charged == pytest.approx(expected)
    assert cpu.busy_us == pytest.approx(expected)


def test_kernel_round_trip_includes_copy_per_byte():
    cpu, path = make(IoPathKind.KERNEL)
    nbytes = 1000
    charged = path.charge_round_trip(nbytes)
    expected = (cpu.costs.io_submit_kernel + cpu.costs.io_complete_kernel
                + 2 * cpu.costs.context_switch
                + cpu.costs.kernel_copy_per_byte * nbytes)
    assert charged == pytest.approx(expected)


def test_kernel_path_strictly_more_expensive():
    __, user = make(IoPathKind.USER_LEVEL)
    __, kernel = make(IoPathKind.KERNEL)
    assert kernel.charge_round_trip(2700) > user.charge_round_trip(2700)


def test_submit_and_complete_sum_to_round_trip():
    cpu_a, path_a = make(IoPathKind.USER_LEVEL)
    cpu_b, path_b = make(IoPathKind.USER_LEVEL)
    path_a.charge_round_trip(512)
    path_b.charge_submit(512)
    path_b.charge_complete(512)
    assert cpu_a.busy_us == pytest.approx(cpu_b.busy_us)


def test_charges_land_in_io_path_category():
    cpu, path = make(IoPathKind.USER_LEVEL)
    path.charge_round_trip(100)
    assert cpu.counters.get("cpu_us.io_path") == pytest.approx(cpu.busy_us)
