"""CounterSet and Histogram behaviour."""

import pytest

from repro.hardware import CounterSet, Histogram


class TestCounterSet:
    def test_unknown_counter_reads_zero(self):
        assert CounterSet().get("nope") == 0.0

    def test_add_accumulates(self):
        counters = CounterSet()
        counters.add("io")
        counters.add("io", 2.5)
        assert counters.get("io") == 3.5

    def test_rejects_negative_increment(self):
        with pytest.raises(ValueError):
            CounterSet().add("io", -1.0)

    def test_snapshot_is_a_copy(self):
        counters = CounterSet()
        counters.add("a", 1)
        snap = counters.snapshot()
        counters.add("a", 1)
        assert snap["a"] == 1.0
        assert counters.get("a") == 2.0

    def test_diff_against_snapshot(self):
        counters = CounterSet()
        counters.add("a", 1)
        snap = counters.snapshot()
        counters.add("a", 2)
        counters.add("b", 5)
        diff = counters.diff(snap)
        assert diff == {"a": 2.0, "b": 5.0}

    def test_diff_omits_unchanged(self):
        counters = CounterSet()
        counters.add("a", 1)
        assert counters.diff(counters.snapshot()) == {}

    def test_reset_clears(self):
        counters = CounterSet()
        counters.add("a", 1)
        counters.reset()
        assert counters.get("a") == 0.0

    def test_contains(self):
        counters = CounterSet()
        counters.add("a")
        assert "a" in counters
        assert "b" not in counters


class TestHistogram:
    def test_empty_histogram_reports_zeros(self):
        hist = Histogram("x")
        assert hist.count == 0
        assert hist.mean == 0.0
        assert hist.percentile(50) == 0.0

    def test_mean_and_total(self):
        hist = Histogram()
        hist.observe_many([1.0, 2.0, 3.0])
        assert hist.total == 6.0
        assert hist.mean == 2.0

    def test_min_max(self):
        hist = Histogram()
        hist.observe_many([5.0, 1.0, 9.0])
        assert hist.minimum == 1.0
        assert hist.maximum == 9.0

    def test_percentiles_exact(self):
        hist = Histogram()
        hist.observe_many(float(i) for i in range(1, 101))
        assert hist.percentile(50) == 50.0
        assert hist.percentile(99) == 99.0
        assert hist.percentile(100) == 100.0

    def test_percentile_unsorted_input(self):
        hist = Histogram()
        hist.observe_many([3.0, 1.0, 2.0])
        assert hist.percentile(100) == 3.0
        # Observing after sorting keeps correctness.
        hist.observe(0.5)
        assert hist.percentile(0) == 0.5

    def test_percentile_range_validation(self):
        hist = Histogram()
        hist.observe(1.0)
        with pytest.raises(ValueError):
            hist.percentile(101)
        with pytest.raises(ValueError):
            hist.percentile(-1)

    def test_reset(self):
        hist = Histogram()
        hist.observe(1.0)
        hist.reset()
        assert hist.count == 0
