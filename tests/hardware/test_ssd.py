"""Simulated SSD: accounting, capacity, busy time."""

import pytest

from repro.hardware import SimulatedSsd, SsdFullError, SsdSpec


def test_default_spec_matches_paper():
    spec = SsdSpec()
    assert spec.capacity_bytes == 500 * 10**9
    assert spec.iops == pytest.approx(2.0e5)
    assert spec.iops_price_dollars == pytest.approx(50.0)


def test_iops_price_is_drive_minus_flash():
    spec = SsdSpec(capacity_bytes=10**9, price_dollars=10.0,
                   flash_price_per_byte=4e-9)
    assert spec.iops_price_dollars == pytest.approx(6.0)


def test_iops_price_never_negative():
    spec = SsdSpec(capacity_bytes=10**12, price_dollars=1.0,
                   flash_price_per_byte=1e-9)
    assert spec.iops_price_dollars == 0.0


def test_spec_validation():
    with pytest.raises(ValueError):
        SsdSpec(capacity_bytes=0)
    with pytest.raises(ValueError):
        SsdSpec(iops=0)
    with pytest.raises(ValueError):
        SsdSpec(price_dollars=-1)


def test_scaled_iops_keeps_other_fields():
    spec = SsdSpec().scaled_iops(5e5)
    assert spec.iops == 5e5
    assert spec.capacity_bytes == SsdSpec().capacity_bytes
    assert spec.price_dollars == SsdSpec().price_dollars


def test_read_counts_ios_and_bytes():
    ssd = SimulatedSsd()
    ssd.read(4096)
    ssd.read(4096)
    assert ssd.counters.get("ssd.reads") == 2
    assert ssd.counters.get("ssd.read_bytes") == 8192
    assert ssd.total_ios == 2


def test_write_counts_separately():
    ssd = SimulatedSsd()
    ssd.write(1024)
    assert ssd.counters.get("ssd.writes") == 1
    assert ssd.counters.get("ssd.reads") == 0


def test_rejects_empty_io():
    with pytest.raises(ValueError):
        SimulatedSsd().read(0)


def test_busy_time_is_iops_bound_for_small_ios():
    ssd = SimulatedSsd(SsdSpec(iops=1000))
    ssd.read(512)
    assert ssd.busy_seconds == pytest.approx(1 / 1000)


def test_busy_time_is_bandwidth_bound_for_large_ios():
    spec = SsdSpec(iops=1e6, bandwidth_bytes_per_sec=1e6)
    ssd = SimulatedSsd(spec)
    ssd.write(2_000_000)   # two seconds at 1 MB/s
    assert ssd.busy_seconds == pytest.approx(2.0)


def test_latency_recorded():
    ssd = SimulatedSsd()
    service = ssd.read(4096)
    assert service >= ssd.spec.read_latency_us
    assert ssd.latencies.count == 1


def test_store_and_release_bytes():
    ssd = SimulatedSsd()
    ssd.store_bytes(1000)
    assert ssd.stored_bytes == 1000
    ssd.release_bytes(400)
    assert ssd.stored_bytes == 600


def test_capacity_enforced():
    ssd = SimulatedSsd(SsdSpec(capacity_bytes=100))
    with pytest.raises(SsdFullError):
        ssd.store_bytes(101)


def test_cannot_release_more_than_stored():
    ssd = SimulatedSsd()
    ssd.store_bytes(10)
    with pytest.raises(ValueError):
        ssd.release_bytes(11)


def test_reset_preserves_stored_bytes():
    ssd = SimulatedSsd()
    ssd.store_bytes(500)
    ssd.read(4096)
    ssd.reset()
    assert ssd.stored_bytes == 500
    assert ssd.total_ios == 0
    assert ssd.busy_seconds == 0.0
