"""LogDevice: FIFO ack queue, ack latency, topology accounting."""

import pytest

from repro.hardware import LogDevice, Machine, SimulatedSsd


@pytest.fixture
def device(machine: Machine) -> LogDevice:
    return LogDevice(machine.ssd, machine.clock, ack_latency_us=25.0)


def test_negative_ack_latency_rejected(machine):
    with pytest.raises(ValueError):
        LogDevice(machine.ssd, machine.clock, ack_latency_us=-1.0)


def test_ack_time_is_service_plus_latency(machine, device):
    spec = machine.ssd.spec
    nbytes = 4096
    service_s = max(1.0 / spec.iops, nbytes / spec.bandwidth_bytes_per_sec)
    ack_s = device.submit_write(nbytes)
    assert ack_s == pytest.approx(
        machine.clock.now + service_s + 25.0e-6)
    assert device.submitted_writes == 1
    assert device.submitted_bytes == nbytes
    assert device.service_seconds == pytest.approx(service_s)


def test_fifo_queueing_behind_inflight_write(machine, device):
    first = device.submit_write(4096)
    # Submitted at the same virtual instant: the second write must wait
    # for the first to finish service before its own service starts.
    second = device.submit_write(4096)
    spec = machine.ssd.spec
    service_s = max(1.0 / spec.iops, 4096 / spec.bandwidth_bytes_per_sec)
    assert second == pytest.approx(first + service_s)
    assert device.queue_wait_us == pytest.approx(service_s * 1e6)


def test_no_queueing_after_device_freed(machine, device):
    device.submit_write(4096)
    machine.clock.advance(1.0)   # well past the service horizon
    before = device.queue_wait_us
    device.submit_write(4096)
    assert device.queue_wait_us == before


def test_writes_hit_the_wrapped_ssd_counters(machine, device):
    writes_before = machine.ssd.counters.get("ssd.writes")
    device.submit_write(4096)
    assert machine.ssd.counters.get("ssd.writes") == writes_before + 1


def test_colocated_contributes_no_extra_elapsed(device):
    device.submit_write(4096)
    assert device.elapsed_contribution() == 0.0


def test_dedicated_contributes_its_service_time(machine):
    private = SimulatedSsd(machine.ssd.spec)
    device = LogDevice(private, machine.clock, ack_latency_us=25.0,
                       colocated=False)
    device.submit_write(4096)
    assert device.elapsed_contribution() == \
        pytest.approx(device.service_seconds)
    assert device.service_seconds > 0.0


def test_reset_zeroes_traffic_but_keeps_queue_horizon(machine, device):
    device.submit_write(4096)
    device.reset()
    assert device.submitted_writes == 0
    assert device.service_seconds == 0.0
    # Horizon preserved: an immediate submit still queues.
    device.submit_write(4096)
    assert device.queue_wait_us > 0.0
