"""End-to-end tests for ``python -m repro sanitize``.

The tentpole claims two things about the dynamic checker: the seeded
threaded-fleet trace is race-free *and deterministic* (same seed and
shard count produce a byte-identical report), and a deliberately raced
fixture is always detected.  Both are pinned here with in-process runs
so thread scheduling genuinely varies between the compared executions.
"""

import pytest

from repro.sanitizer.cli import inject_race, main, run_sanitized_trace
from repro.sanitizer.core import RaceSanitizer


def test_seeded_trace_is_race_free():
    sanitizer = run_sanitized_trace(seed=7, shards=2, records=64, ops=120)
    assert sanitizer.races() == []
    assert sanitizer.render() == "race sanitizer: no races detected"


def test_same_seed_same_shards_byte_identical_report():
    first = run_sanitized_trace(seed=3, shards=3, records=64, ops=144)
    second = run_sanitized_trace(seed=3, shards=3, records=64, ops=144)
    assert first.render().encode() == second.render().encode()
    # The raced variant is deterministic too, not just the empty report.
    inject_race(first)
    inject_race(second)
    assert first.render().encode() == second.render().encode()
    assert first.races()


@pytest.mark.parametrize("attempt", range(3))
def test_injected_race_is_always_detected(attempt):
    sanitizer = RaceSanitizer()
    inject_race(sanitizer)
    races = sanitizer.races()
    assert len(races) == 1
    assert races[0].obj == "injected.shared"


def test_cli_smoke_exits_zero(capsys):
    assert main(["--smoke"]) == 0
    assert "no races detected" in capsys.readouterr().out


def test_cli_inject_race_exits_one(capsys):
    assert main(["--smoke", "--inject-race"]) == 1
    out = capsys.readouterr().out
    assert "1 race(s) detected" in out
    assert "injected.shared" in out


def test_trace_touches_instrumented_log_objects():
    # The trace must actually exercise the commit-pipeline
    # instrumentation: every shard's log sees mark_durable writes from
    # its own shard task, otherwise the "race-free" report is vacuous.
    sanitizer = run_sanitized_trace(seed=0, shards=2, records=64, ops=120)
    accessed = set(sanitizer._accesses)
    assert "shard[0].log" in accessed
    assert "shard[1].log" in accessed
