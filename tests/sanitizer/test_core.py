"""Unit tests for the vector-clock race sanitizer."""

from repro.sanitizer.core import MAIN_TASK, RaceSanitizer


def test_fork_orders_parent_before_child():
    sanitizer = RaceSanitizer()
    target = object()
    sanitizer.name_object(target, "shared")
    sanitizer.write(target, "init")
    sanitizer.fork("worker")
    with sanitizer.task("worker"):
        sanitizer.write(target, "update")
    sanitizer.join("worker")
    assert sanitizer.races() == []


def test_join_orders_child_before_later_parent_access():
    sanitizer = RaceSanitizer()
    target = object()
    sanitizer.name_object(target, "shared")
    sanitizer.fork("worker")
    with sanitizer.task("worker"):
        sanitizer.write(target, "update")
    sanitizer.join("worker")
    sanitizer.write(target, "drain")
    assert sanitizer.races() == []


def test_unordered_writes_race():
    sanitizer = RaceSanitizer()
    target = object()
    sanitizer.name_object(target, "shared")
    sanitizer.fork("a")
    sanitizer.fork("b")
    with sanitizer.task("a"):
        sanitizer.write(target, "increment")
    with sanitizer.task("b"):
        sanitizer.write(target, "increment")
    sanitizer.join("a")
    sanitizer.join("b")
    races = sanitizer.races()
    assert len(races) == 1
    race = races[0]
    assert race.obj == "shared"
    assert {race.task_a, race.task_b} == {"a", "b"}
    assert race.owner == "a"


def test_concurrent_read_write_races_but_read_read_does_not():
    sanitizer = RaceSanitizer()
    hot = object()
    cold = object()
    sanitizer.name_object(hot, "hot")
    sanitizer.name_object(cold, "cold")
    sanitizer.fork("a")
    sanitizer.fork("b")
    with sanitizer.task("a"):
        sanitizer.write(hot, "store")
        sanitizer.read(cold, "load")
    with sanitizer.task("b"):
        sanitizer.read(hot, "load")
        sanitizer.read(cold, "load")
    sanitizer.join("a")
    sanitizer.join("b")
    races = sanitizer.races()
    assert [race.obj for race in races] == ["hot"]


def test_unnamed_objects_are_ignored():
    sanitizer = RaceSanitizer()
    sanitizer.fork("a")
    sanitizer.fork("b")
    anonymous = object()
    with sanitizer.task("a"):
        sanitizer.write(anonymous)
    with sanitizer.task("b"):
        sanitizer.write(anonymous)
    sanitizer.join("a")
    sanitizer.join("b")
    assert sanitizer.races() == []


def test_string_names_track_without_registration():
    sanitizer = RaceSanitizer()
    sanitizer.fork("a")
    sanitizer.fork("b")
    with sanitizer.task("a"):
        sanitizer.write("by-name", "store")
    with sanitizer.task("b"):
        sanitizer.write("by-name", "store")
    sanitizer.join("a")
    sanitizer.join("b")
    assert [race.obj for race in sanitizer.races()] == ["by-name"]


def test_task_label_restores_previous_label():
    sanitizer = RaceSanitizer()
    assert sanitizer.current_task == MAIN_TASK
    with sanitizer.task("outer"):
        assert sanitizer.current_task == "outer"
        with sanitizer.task("inner"):
            assert sanitizer.current_task == "inner"
        assert sanitizer.current_task == "outer"
    assert sanitizer.current_task == MAIN_TASK


def test_bound_runs_fn_under_label():
    sanitizer = RaceSanitizer()
    seen = []
    job = sanitizer.bound("worker", lambda: seen.append(
        sanitizer.current_task))
    job()
    assert seen == ["worker"]
    assert sanitizer.current_task == MAIN_TASK


def test_render_formats_clean_and_racy_reports():
    clean = RaceSanitizer()
    assert clean.render() == "race sanitizer: no races detected"
    racy = RaceSanitizer()
    racy.fork("a")
    racy.fork("b")
    with racy.task("a"):
        racy.write("obj", "store")
    with racy.task("b"):
        racy.write("obj", "store")
    report = racy.render()
    assert report.startswith("race sanitizer: 1 race(s) detected")
    assert "RACE on obj" in report
